"""NUMA-partitioned forward and backward graphs (paper §IV-A, §V-B2, Fig. 6).

Two complementary partitionings of the same undirected graph:

* **ForwardGraph** (top-down): *column*-partitioned.  Each NUMA node ``k``
  holds a CSR with **all** ``n`` source rows but only the destinations that
  node ``k`` owns; the frontier is thus logically duplicated across nodes,
  and node ``k``'s threads write only to node-local visited bits and tree
  entries.  NETAL "delegates the search to other source vertices that
  belong to the same NUMA node as the destination vertices".

* **BackwardGraph** (bottom-up): *row*-partitioned.  Node ``k`` holds the
  full adjacency of its own vertex range ``[lo, hi)``; the bottom-up scan
  over unvisited vertices then reads only node-local rows, and candidate
  frontier membership is tested against a shared bitmap.

Both are pure reindexings: the union of the forward shards' edges equals
the union of the backward shards' edges equals the input CSR — a property
the test suite checks exhaustively and by hypothesis.
"""

from __future__ import annotations

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError
from repro.numa.topology import NumaTopology, VertexPartition

__all__ = ["ForwardGraph", "BackwardGraph"]


class ForwardGraph:
    """Column-partitioned CSR pair list for the top-down direction.

    ``shards[k]`` is a :class:`CSRGraph` with ``n`` rows whose value array
    contains only destinations owned by NUMA node ``k``.  Rows stay sorted.
    """

    def __init__(self, csr: CSRGraph, topology: NumaTopology) -> None:
        self.topology = topology
        self.n_vertices = csr.n_rows
        if csr.n_cols != csr.n_rows:
            raise GraphFormatError("ForwardGraph requires a square CSR")
        self.partitions: list[VertexPartition] = topology.partitions(self.n_vertices)
        n = self.n_vertices
        degrees = csr.degrees()
        row_of_entry = np.repeat(np.arange(n, dtype=np.int64), degrees)
        owners = topology.owner_of(csr.adj, n) if csr.adj.size else csr.adj
        self.shards: list[CSRGraph] = []
        for part in self.partitions:
            mask = owners == part.node if csr.adj.size else np.empty(0, dtype=bool)
            counts = np.bincount(row_of_entry[mask], minlength=n).astype(np.int64)
            indptr = np.empty(n + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(counts, out=indptr[1:])
            self.shards.append(
                CSRGraph(indptr=indptr, adj=csr.adj[mask].copy(), n_cols=n)
            )

    @property
    def nbytes(self) -> int:
        """Total bytes across shards (the paper's *forward graph* size)."""
        return sum(s.nbytes for s in self.shards)

    @property
    def n_directed_edges(self) -> int:
        """Total value-array entries across shards (equals the input's)."""
        return sum(s.n_directed_edges for s in self.shards)

    def shard(self, node: int) -> CSRGraph:
        """The CSR shard held by NUMA node ``node``."""
        return self.shards[node]

    def __repr__(self) -> str:
        return (
            f"ForwardGraph(n={self.n_vertices}, nodes={self.topology.n_nodes}, "
            f"nnz={self.n_directed_edges})"
        )


class BackwardGraph:
    """Row-partitioned CSR list for the bottom-up direction.

    ``shards[k]`` holds the rows of node ``k``'s vertex range with *local*
    row numbering (global vertex ``v`` is row ``v - partitions[k].lo``);
    destination IDs remain global, since frontier membership is tested via
    a global bitmap.
    """

    def __init__(self, csr: CSRGraph, topology: NumaTopology) -> None:
        self.topology = topology
        self.n_vertices = csr.n_rows
        if csr.n_cols != csr.n_rows:
            raise GraphFormatError("BackwardGraph requires a square CSR")
        self.partitions: list[VertexPartition] = topology.partitions(self.n_vertices)
        self.shards: list[CSRGraph] = []
        for part in self.partitions:
            lo, hi = part.lo, part.hi
            base = csr.indptr[lo]
            indptr = (csr.indptr[lo : hi + 1] - base).astype(np.int64)
            adj = csr.adj[base : csr.indptr[hi]].copy()
            self.shards.append(
                CSRGraph(indptr=indptr, adj=adj, n_cols=self.n_vertices)
            )

    @property
    def nbytes(self) -> int:
        """Total bytes across shards (the paper's *backward graph* size)."""
        return sum(s.nbytes for s in self.shards)

    @property
    def n_directed_edges(self) -> int:
        """Total value-array entries across shards (equals the input's)."""
        return sum(s.n_directed_edges for s in self.shards)

    def shard(self, node: int) -> CSRGraph:
        """The CSR shard held by NUMA node ``node``."""
        return self.shards[node]

    def global_degrees(self) -> np.ndarray:
        """Degrees in global vertex order, reassembled from the shards."""
        return np.concatenate([s.degrees() for s in self.shards])

    def __repr__(self) -> str:
        return (
            f"BackwardGraph(n={self.n_vertices}, nodes={self.topology.n_nodes}, "
            f"nnz={self.n_directed_edges})"
        )
