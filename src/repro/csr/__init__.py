"""CSR graph substrate (the paper's *index array* / *value array* format).

NETAL holds two CSR graphs (§IV-A): the *forward graph* consumed by the
top-down direction and the *backward graph* consumed by the bottom-up
direction, both partitioned across NUMA nodes (§V-B2).  This package
provides:

* :class:`CSRGraph` — the plain single-address-space CSR structure;
* :func:`build_csr` — vectorized construction from a Graph500 edge list
  (symmetrization, self-loop removal, deduplication, sorted rows);
* :class:`ForwardGraph` / :class:`BackwardGraph` — the NUMA-partitioned
  pair with frontier duplication exactly as Figure 6 of the paper;
* :class:`ExternalCSR` — a CSR whose index/value arrays live on simulated
  NVM as the paper's *array file* and *value file* (§V-B1).
"""

from repro.csr.builder import build_csr
from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR, offload_csr
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.csr.streaming import build_csr_streaming

__all__ = [
    "CSRGraph",
    "build_csr",
    "build_csr_streaming",
    "ForwardGraph",
    "BackwardGraph",
    "ExternalCSR",
    "offload_csr",
]
