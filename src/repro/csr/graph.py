"""Compressed Sparse Row graph structure.

The format follows the paper's Figure 5: an *index* array of ``n + 1``
offsets (one per source vertex plus a terminator) and a *value* array
holding destination vertex IDs; row ``v`` occupies
``value[index[v] : index[v+1]]``.  For the undirected Graph500 inputs the
value array holds each edge twice (both directions), so
``len(value) == 2 * m_unique`` (§V-B1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable CSR adjacency structure.

    Attributes
    ----------
    indptr:
        ``int64[n_rows + 1]`` non-decreasing offsets (the *index array*).
    adj:
        ``int64[indptr[-1]]`` destination IDs (the *value array*), sorted
        within each row by :func:`repro.csr.builder.build_csr`.
    n_cols:
        Size of the destination vertex universe (for partitioned shards
        this can differ from ``n_rows``).
    """

    indptr: np.ndarray
    adj: np.ndarray
    n_cols: int

    def __post_init__(self) -> None:
        ip, ad = self.indptr, self.adj
        if ip.ndim != 1 or ip.size < 1:
            raise GraphFormatError(f"indptr must be 1-D non-empty, got {ip.shape}")
        if ip.dtype != np.int64 or ad.dtype != np.int64:
            raise GraphFormatError(
                f"CSR arrays must be int64, got indptr={ip.dtype} adj={ad.dtype}"
            )
        if ip[0] != 0 or ip[-1] != ad.size:
            raise GraphFormatError(
                f"indptr must run from 0 to len(adj)={ad.size}, "
                f"got [{ip[0]}, {ip[-1]}]"
            )
        if np.any(np.diff(ip) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.n_cols <= 0:
            raise GraphFormatError(f"n_cols must be positive: {self.n_cols}")
        if ad.size and (ad.min() < 0 or int(ad.max()) >= self.n_cols):
            raise GraphFormatError(
                f"adjacency value outside [0, {self.n_cols}): "
                f"min={ad.min()}, max={ad.max()}"
            )

    # -- shape -----------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of source vertices (rows)."""
        return int(self.indptr.size - 1)

    @property
    def n_vertices(self) -> int:
        """Alias of :attr:`n_rows` for square (unpartitioned) graphs."""
        return self.n_rows

    @property
    def n_directed_edges(self) -> int:
        """Entries in the value array (2× undirected edge count)."""
        return int(self.adj.size)

    @property
    def nbytes(self) -> int:
        """Bytes of the two arrays (the quantity Figure 3 plots)."""
        return int(self.indptr.nbytes + self.adj.nbytes)

    # -- access -----------------------------------------------------------------

    def degrees(self) -> np.ndarray:
        """Out-degree per row (a view-free diff of the index array)."""
        return np.diff(self.indptr)

    def degree(self, v: int) -> int:
        """Out-degree of one row."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of row ``v``'s destinations."""
        return self.adj[self.indptr[v] : self.indptr[v + 1]]

    def row_extents(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, counts)`` of the given rows in the value array.

        This is the unit the semi-external reader works in: one extent per
        frontier vertex, later split into ≤4 KB device requests.
        """
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        return starts, counts

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search (rows are sorted)."""
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and int(row[i]) == v

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n_cols == other.n_cols
            and bool(np.array_equal(self.indptr, other.indptr))
            and bool(np.array_equal(self.adj, other.adj))
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n_rows={self.n_rows}, n_cols={self.n_cols}, "
            f"nnz={self.n_directed_edges})"
        )
