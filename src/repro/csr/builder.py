"""Vectorized CSR construction from a Graph500 edge list.

Graph construction is benchmark Step 2 (§II).  The Kronecker generator
emits a *multigraph with self-loops*; per the reference implementation the
constructed search structure drops self-loops and duplicate edges and
stores both directions of each remaining undirected edge, with each row
sorted by destination ID.  Sorted rows matter twice over in this codebase:
the bottom-up step's early termination then probes low-numbered (NUMA node
0) candidates first, and the semi-external reader's requests become
sequential within a row.

The whole construction is three NumPy passes over the edge array
(symmetrize → sort by 128-bit key → unique), i.e. ``O(M log M)`` with no
Python-level loop, the idiom the HPC guides prescribe.
"""

from __future__ import annotations

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError
from repro.graph500.edgelist import EdgeList

__all__ = ["build_csr"]


def build_csr(
    edges: EdgeList | np.ndarray,
    n_vertices: int | None = None,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> CSRGraph:
    """Build the symmetric CSR structure for an undirected edge list.

    Parameters
    ----------
    edges:
        An :class:`EdgeList` or a raw ``(2, M)`` int64 array.
    n_vertices:
        Vertex universe size; required when passing a raw array.
    dedup:
        Remove duplicate (u, v) pairs after symmetrization (the Graph500
        reference constructs a simple graph; keep ``False`` to study
        multigraph behaviour).
    drop_self_loops:
        Remove loops (the reference does; BFS ignores them anyway).

    Returns
    -------
    CSRGraph
        Square CSR over ``n_vertices`` rows with sorted rows.

    >>> import numpy as np
    >>> g = build_csr(np.array([[0, 1], [1, 2]]), n_vertices=3)
    >>> list(g.neighbors(1))
    [0, 2]
    """
    if isinstance(edges, EdgeList):
        ep = edges.endpoints
        n = edges.n_vertices
    else:
        ep = np.asarray(edges)
        if ep.ndim != 2 or ep.shape[0] != 2:
            raise GraphFormatError(f"edges must be (2, M), got {ep.shape}")
        if n_vertices is None:
            raise GraphFormatError("n_vertices required with a raw edge array")
        n = int(n_vertices)
        ep = ep.astype(np.int64, copy=False)
        if ep.size and (ep.min() < 0 or int(ep.max()) >= n):
            raise GraphFormatError(f"endpoint outside [0, {n})")

    u, v = ep[0], ep[1]
    if drop_self_loops:
        keep = u != v
        u, v = u[keep], v[keep]

    # Symmetrize: every undirected edge contributes both directions.
    src = np.concatenate((u, v))
    dst = np.concatenate((v, u))

    if src.size == 0:
        indptr = np.zeros(n + 1, dtype=np.int64)
        return CSRGraph(indptr=indptr, adj=np.empty(0, dtype=np.int64), n_cols=n)

    # Sort by (src, dst) with one 64-bit composite key; n <= 2**31 keeps
    # src * n + dst within int64 for every Graph500 scale this library runs.
    if n > (1 << 31):
        raise GraphFormatError(f"n_vertices {n} exceeds the 2**31 key limit")
    keys = src * np.int64(n) + dst
    if dedup:
        keys = np.unique(keys)
    else:
        keys.sort(kind="stable")
    src_sorted = keys // np.int64(n)
    dst_sorted = keys % np.int64(n)

    counts = np.bincount(src_sorted, minlength=n).astype(np.int64)
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr=indptr, adj=dst_sorted.astype(np.int64), n_cols=n)
