"""Streaming (two-pass) CSR construction from edge-list batches.

The paper's Step 2 builds the forward graph "by directly reading the edge
list from NVM" (§V-A) — at SCALE 31 that edge list is 384 GB, so
construction cannot materialize it.  :func:`build_csr_streaming` consumes
any iterable of ``(2, m)`` batches twice (a degree-counting pass and a
filling pass) with peak memory ``O(n + batch)``:

1. **count pass** — accumulate per-vertex degrees (both directions,
   self-loops dropped) and derive ``indptr``;
2. **fill pass** — scatter each batch's endpoints into the value array at
   per-vertex write cursors;
3. finalize — sort each row and, optionally, deduplicate in place.

With deduplication the result equals :func:`repro.csr.builder.build_csr`
on the concatenated batches exactly (asserted by tests and hypothesis).
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.csr.graph import CSRGraph
from repro.errors import GraphFormatError
from repro.util.gather import concat_ranges

__all__ = ["build_csr_streaming"]


def build_csr_streaming(
    batches: Callable[[], Iterable[np.ndarray]],
    n_vertices: int,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> CSRGraph:
    """Two-pass CSR construction over re-iterable edge batches.

    Parameters
    ----------
    batches:
        Zero-argument callable returning a *fresh* iterator over the
        ``(2, m)`` int64 batches (called twice; a generator function or a
        lambda re-reading NVM both work —
        ``lambda: generate_edge_batches(...)`` streams straight from the
        Kronecker generator).
    n_vertices:
        Vertex universe size.
    dedup / drop_self_loops:
        As in :func:`repro.csr.builder.build_csr`.
    """
    n = int(n_vertices)
    if n <= 0:
        raise GraphFormatError(f"n_vertices must be positive: {n}")

    # Pass 1 — degrees.
    degrees = np.zeros(n, dtype=np.int64)
    for batch in batches():
        u, v = _checked(batch, n)
        if drop_self_loops:
            keep = u != v
            u, v = u[keep], v[keep]
        degrees += np.bincount(u, minlength=n)
        degrees += np.bincount(v, minlength=n)
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(degrees, out=indptr[1:])

    # Pass 2 — scatter fill at per-vertex cursors.
    adj = np.empty(int(indptr[-1]), dtype=np.int64)
    cursor = indptr[:-1].copy()
    for batch in batches():
        u, v = _checked(batch, n)
        if drop_self_loops:
            keep = u != v
            u, v = u[keep], v[keep]
        for src, dst in ((u, v), (v, u)):
            # Duplicate sources within a batch need sequential cursor
            # bumps: sort by source, then each source's entries land at
            # cursor + 0..k-1 via a segmented arange.
            order = np.argsort(src, kind="stable")
            s_sorted = src[order]
            d_sorted = dst[order]
            counts = np.bincount(s_sorted, minlength=n)
            active = np.flatnonzero(counts)
            slots = concat_ranges(cursor[active], counts[active])
            adj[slots] = d_sorted
            cursor[active] += counts[active]

    # Finalize — sort rows (and dedup) without re-materializing edges.
    _sort_rows_inplace(indptr, adj)
    if dedup:
        return _dedup_sorted(indptr, adj, n)
    return CSRGraph(indptr=indptr, adj=adj, n_cols=n)


def _checked(batch: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    b = np.asarray(batch)
    if b.ndim != 2 or b.shape[0] != 2:
        raise GraphFormatError(f"batch must be (2, m), got {b.shape}")
    b = b.astype(np.int64, copy=False)
    if b.size and (b.min() < 0 or int(b.max()) >= n):
        raise GraphFormatError(f"endpoint outside [0, {n})")
    return b[0], b[1]


def _sort_rows_inplace(indptr: np.ndarray, adj: np.ndarray) -> None:
    """Sort every CSR row by destination (one global composite sort).

    A composite (row, value) key sort is O(E log E) and fully vectorized,
    versus a Python loop of per-row sorts.
    """
    if adj.size == 0:
        return
    n = indptr.size - 1
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.lexsort((adj, rows))
    adj[:] = adj[order]


def _dedup_sorted(
    indptr: np.ndarray, adj: np.ndarray, n: int
) -> CSRGraph:
    """Remove repeated destinations from sorted rows (vectorized)."""
    if adj.size == 0:
        return CSRGraph(indptr=indptr, adj=adj, n_cols=n)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    first = np.empty(adj.size, dtype=bool)
    first[0] = True
    np.not_equal(adj[1:], adj[:-1], out=first[1:])
    first[1:] |= rows[1:] != rows[:-1]
    new_counts = np.bincount(rows[first], minlength=n)
    new_indptr = np.empty(n + 1, dtype=np.int64)
    new_indptr[0] = 0
    np.cumsum(new_counts, out=new_indptr[1:])
    return CSRGraph(
        indptr=new_indptr,
        adj=np.ascontiguousarray(adj[first]),
        n_cols=n,
    )
