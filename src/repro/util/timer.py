"""Wall-clock timing utilities.

Two clock abstractions coexist in this library:

* :class:`WallClock` — real elapsed time (``perf_counter``), used for the
  *measured* TEPS numbers;
* :class:`repro.semiext.clock.SimulatedClock` — modeled time, used for the
  *modeled* TEPS numbers that include NVM device charges.

Both expose ``now()`` in seconds so the BFS engines can be written against
either.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["WallClock", "Timer"]


class WallClock:
    """Monotonic real-time clock (seconds as float)."""

    @staticmethod
    def now() -> float:
        """Current monotonic time in seconds."""
        return time.perf_counter()


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True

    Re-entering accumulates, supporting per-phase totals across BFS levels.
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the total accumulated seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called while not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulator (stopwatch must not be running)."""
        if self._start is not None:
            raise RuntimeError("Timer.reset() called while running")
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
