"""Shared low-level utilities.

The modules here have no dependency on the rest of :mod:`repro`; every other
subpackage may depend on them.

===================  =====================================================
Module               Contents
===================  =====================================================
:mod:`~repro.util.bitmap`    Word-packed bitmaps with vectorized set/test.
:mod:`~repro.util.chunking`  4 KB request splitting and sector arithmetic.
:mod:`~repro.util.rng`       Seeded RNG streams for reproducible runs.
:mod:`~repro.util.units`     Byte-size parsing/formatting helpers.
:mod:`~repro.util.timer`     Wall-clock timers and scoped timing.
:mod:`~repro.util.gather`    Ragged-segment gather/scan primitives for CSR.
===================  =====================================================
"""

from repro.util.bitmap import Bitmap
from repro.util.chunking import ChunkPlan, merge_extents, plan_chunks, split_extent
from repro.util.gather import concat_ranges, first_true_per_segment, segment_ids
from repro.util.rng import SeedSequence, derive_rng
from repro.util.timer import Timer, WallClock
from repro.util.units import format_bytes, parse_bytes

__all__ = [
    "Bitmap",
    "ChunkPlan",
    "plan_chunks",
    "merge_extents",
    "split_extent",
    "concat_ranges",
    "first_true_per_segment",
    "segment_ids",
    "SeedSequence",
    "derive_rng",
    "Timer",
    "WallClock",
    "format_bytes",
    "parse_bytes",
]
