"""Request-chunking arithmetic for semi-external reads.

The paper's implementation reads CSR rows from NVM with ``read(2)`` in
"a max chunk size 4KB" (§V-B1, §V-C).  This module turns byte extents into
the exact sequence of device requests such a reader issues, so the I/O
statistics (request count, per-request size, sectors) are *measured from the
actual access pattern* rather than modeled.

A request never exceeds ``chunk_bytes`` and, matching page-granular readers,
requests after the first are aligned to ``chunk_bytes`` boundaries within
the file.  All sizes are in bytes; iostat-style sector counts use 512-byte
sectors (:data:`SECTOR_BYTES`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SECTOR_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_MAX_MERGED_BYTES",
    "ChunkPlan",
    "split_extent",
    "plan_chunks",
    "merge_extents",
]

SECTOR_BYTES = 512
"""Bytes per sector, as reported by ``iostat`` (``avgrq-sz`` unit)."""

DEFAULT_CHUNK_BYTES = 4096
"""The paper's maximum ``read(2)`` size: 4 KB (§V-B1)."""

DEFAULT_MAX_MERGED_BYTES = 128 * 1024
"""Largest device request the block layer assembles from merged pages.

Linux of the paper's era (2.6.32) caps merged requests at
``max_sectors_kb`` (128–512 KB typical); 128 KB reproduces the observed
``avgrq-sz`` regime of ~20 sectors given the CSR row-length mix."""


@dataclass(frozen=True)
class ChunkPlan:
    """The device requests covering a batch of byte extents.

    Attributes
    ----------
    offsets:
        ``int64`` array of file offsets, one per request.
    sizes:
        ``int64`` array of request sizes in bytes, one per request.
    """

    offsets: np.ndarray
    sizes: np.ndarray

    @property
    def n_requests(self) -> int:
        """Total number of device requests."""
        return int(self.offsets.size)

    @property
    def total_bytes(self) -> int:
        """Total bytes transferred across all requests."""
        return int(self.sizes.sum()) if self.sizes.size else 0

    @property
    def sectors(self) -> np.ndarray:
        """Per-request size in 512-byte sectors (rounded up)."""
        return (self.sizes + (SECTOR_BYTES - 1)) // SECTOR_BYTES

    def __post_init__(self) -> None:
        if self.offsets.shape != self.sizes.shape:
            raise ConfigurationError("offsets/sizes shape mismatch")


def split_extent(
    offset: int, length: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> ChunkPlan:
    """Split one byte extent into aligned ≤ ``chunk_bytes`` requests.

    The first request runs from ``offset`` to the next ``chunk_bytes``
    boundary (or the end of the extent); subsequent requests are full
    aligned chunks, with a short tail request if needed.

    >>> plan = split_extent(1000, 9000, 4096)
    >>> list(plan.offsets), list(plan.sizes)
    ([1000, 4096, 8192], [3096, 4096, 1808])
    """
    if length < 0 or offset < 0:
        raise ConfigurationError(f"negative extent: offset={offset} length={length}")
    if chunk_bytes <= 0:
        raise ConfigurationError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if length == 0:
        empty = np.empty(0, dtype=np.int64)
        return ChunkPlan(empty, empty.copy())
    end = offset + length
    first_boundary = min(end, (offset // chunk_bytes + 1) * chunk_bytes)
    starts = [offset]
    pos = first_boundary
    while pos < end:
        starts.append(pos)
        pos += chunk_bytes
    offs = np.asarray(starts, dtype=np.int64)
    ends = np.minimum(offs + chunk_bytes, end)
    ends[0] = first_boundary
    return ChunkPlan(offs, ends - offs)


def plan_chunks(
    offsets: np.ndarray,
    lengths: np.ndarray,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> ChunkPlan:
    """Vectorized :func:`split_extent` over many extents.

    Given per-row byte extents of CSR adjacency lists (one extent per
    frontier vertex), returns the concatenated request stream the chunked
    reader issues.  Zero-length extents produce no requests.

    The implementation avoids a Python-level loop over extents: the number
    of requests per extent is computed arithmetically, then offsets are
    reconstructed with a segmented ``arange``.
    """
    offs = np.asarray(offsets, dtype=np.int64)
    lens = np.asarray(lengths, dtype=np.int64)
    if offs.shape != lens.shape:
        raise ConfigurationError("offsets/lengths shape mismatch")
    if offs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return ChunkPlan(empty, empty.copy())
    if lens.min() < 0 or offs.min() < 0:
        raise ConfigurationError("negative offset or length in extent batch")
    if chunk_bytes <= 0:
        raise ConfigurationError(f"chunk_bytes must be positive, got {chunk_bytes}")

    nonzero = lens > 0
    offs_nz = offs[nonzero]
    lens_nz = lens[nonzero]
    if offs_nz.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return ChunkPlan(empty, empty.copy())

    ends = offs_nz + lens_nz
    # Number of chunk-aligned pages each extent touches equals the number of
    # requests: first partial page + full pages + trailing partial page.
    first_page = offs_nz // chunk_bytes
    last_page = (ends - 1) // chunk_bytes
    n_req = (last_page - first_page + 1).astype(np.int64)

    total = int(n_req.sum())
    # Request k (0-based) of an extent starts at the extent offset for k=0
    # and at page boundary (first_page + k) * chunk_bytes afterwards.
    seg_starts = np.zeros(total, dtype=np.int64)
    seg_first = np.concatenate(([0], np.cumsum(n_req)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_first, n_req)
    page = np.repeat(first_page, n_req) + within
    req_off = page * chunk_bytes
    # First request of each extent starts at the (possibly unaligned) offset.
    req_off[seg_first] = offs_nz
    # Request end: next page boundary, clamped to the extent end.
    ext_end = np.repeat(ends, n_req)
    req_end = np.minimum((page + 1) * chunk_bytes, ext_end)
    del seg_starts
    return ChunkPlan(req_off, req_end - req_off)


def merge_extents(
    offsets: np.ndarray,
    lengths: np.ndarray,
    page_bytes: int = DEFAULT_CHUNK_BYTES,
    max_request_bytes: int = DEFAULT_MAX_MERGED_BYTES,
) -> ChunkPlan:
    """Model the kernel path from ``read(2)`` calls to *device* requests.

    Buffered reads are page-granular (every extent is widened to page
    boundaries), pages touched twice within a batch hit the page cache
    (overlapping/adjacent page ranges are unioned), and the block layer
    merges contiguous pages into device requests of at most
    ``max_request_bytes`` — these post-merge requests are what ``iostat``
    reports as ``avgrq-sz``, which is why the paper observes ~22-sector
    requests from a reader that never issues more than 4 KB at a time.

    Returns the merged device-request stream, sorted by offset.

    >>> plan = merge_extents(np.array([100, 5000]), np.array([50, 50]))
    >>> list(plan.offsets), list(plan.sizes)
    ([0], [8192])
    """
    offs = np.asarray(offsets, dtype=np.int64)
    lens = np.asarray(lengths, dtype=np.int64)
    if offs.shape != lens.shape:
        raise ConfigurationError("offsets/lengths shape mismatch")
    if page_bytes <= 0 or max_request_bytes <= 0:
        raise ConfigurationError("page_bytes/max_request_bytes must be positive")
    nonzero = lens > 0
    offs, lens = offs[nonzero], lens[nonzero]
    if offs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return ChunkPlan(empty, empty.copy())
    if offs.min() < 0:
        raise ConfigurationError("negative offset in extent batch")

    # Page-align every extent.
    starts = (offs // page_bytes) * page_bytes
    ends = ((offs + lens + page_bytes - 1) // page_bytes) * page_bytes

    # Union overlapping or adjacent page ranges (vectorized interval merge).
    order = np.argsort(starts, kind="stable")
    s, e = starts[order], ends[order]
    prev_max_end = np.concatenate(([np.int64(-1)], np.maximum.accumulate(e)[:-1]))
    new_group = s > prev_max_end  # strict: touching ranges merge
    new_group[0] = True
    group_first = np.flatnonzero(new_group)
    merged_start = s[group_first]
    merged_end = np.maximum.reduceat(e, group_first)

    # The block layer splits long runs at max_request_bytes.
    return plan_chunks(
        merged_start, merged_end - merged_start, chunk_bytes=max_request_bytes
    )
