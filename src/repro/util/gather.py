"""Ragged-segment primitives for vectorized CSR traversal.

The BFS kernels operate on *segments*: each frontier (or unvisited) vertex
owns a contiguous slice ``adj[indptr[v]:indptr[v+1]]`` of the CSR value
array.  Traversing a whole level means gathering many such slices, tagging
every element with its owning segment, and — for the bottom-up step —
finding the *first* matching element per segment to honour the algorithm's
early termination.  Doing this with Python loops is orders of magnitude too
slow; the three primitives here do it with a constant number of NumPy
passes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["concat_ranges", "segment_ids", "first_true_per_segment"]


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Return indices equivalent to ``concatenate([arange(s, s+c) ...])``.

    For CSR row gathering: ``adj[concat_ranges(indptr[vs], degs)]`` yields
    the concatenation of the adjacency lists of vertices ``vs`` without a
    Python loop.

    >>> concat_ranges(np.array([5, 0]), np.array([3, 2]))
    array([5, 6, 7, 0, 1])
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if starts.shape != counts.shape:
        raise GraphFormatError("starts/counts shape mismatch")
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if counts.min() < 0:
        raise GraphFormatError("negative segment count")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Segmented arange: a global arange rebased per segment so each segment
    # restarts at its own `start`.
    seg_first = np.concatenate(([0], np.cumsum(counts)[:-1]))
    nonempty = counts > 0
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(seg_first[nonempty], counts[nonempty])
    out += np.repeat(starts[nonempty], counts[nonempty])
    return out


def segment_ids(counts: np.ndarray) -> np.ndarray:
    """Return, for each gathered element, the index of its owning segment.

    >>> segment_ids(np.array([2, 0, 3]))
    array([0, 0, 2, 2, 2])
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0 or counts.sum() == 0:
        return np.empty(0, dtype=np.int64)
    if counts.min() < 0:
        raise GraphFormatError("negative segment count")
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)


def first_true_per_segment(
    mask: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Find the first ``True`` within each segment of a concatenated mask.

    Implements the bottom-up step's early termination: ``mask`` flags, for
    every scanned edge, whether the neighbour is in the frontier; each
    segment is one unvisited vertex's adjacency list, and the scan stops at
    the first hit.

    Parameters
    ----------
    mask:
        Boolean array of length ``counts.sum()`` (concatenated segments).
    counts:
        Per-segment lengths.

    Returns
    -------
    hit_global:
        For each segment, the *global* index into ``mask`` of its first
        ``True`` element, or ``-1`` if the segment has none.
    scanned:
        Number of elements examined per segment under early termination:
        ``offset_of_first_hit + 1`` for segments with a hit, the full
        segment length otherwise.  ``scanned.sum()`` is exactly the edge
        traffic the paper's Figure 10 reports for the bottom-up direction.
    """
    counts = np.asarray(counts, dtype=np.int64)
    mask = np.asarray(mask, dtype=bool)
    if int(counts.sum() if counts.size else 0) != mask.size:
        raise GraphFormatError(
            f"mask length {mask.size} != counts total {int(counts.sum()) if counts.size else 0}"
        )
    n_seg = counts.size
    hit_global = np.full(n_seg, -1, dtype=np.int64)
    scanned = counts.copy()
    if mask.size == 0:
        return hit_global, scanned

    seg_first = np.concatenate(([0], np.cumsum(counts)[:-1]))
    hits = np.flatnonzero(mask)
    if hits.size == 0:
        return hit_global, scanned
    # Segments are laid out in order, so the owning segment of each hit is
    # found by binary search; the first hit per segment is the first
    # occurrence in the (sorted) hit list.
    owner = np.searchsorted(seg_first, hits, side="right") - 1
    first_seg, first_pos = np.unique(owner, return_index=True)
    first_hit = hits[first_pos]
    hit_global[first_seg] = first_hit
    scanned[first_seg] = first_hit - seg_first[first_seg] + 1
    return hit_global, scanned
