"""Byte-size formatting and parsing.

The paper quotes capacities in binary units (e.g. "the forward graph at
SCALE 27 is 40.1 GB"); these helpers render and parse such figures
consistently (binary prefixes, 1 GB = 2**30 bytes, matching the paper's
arithmetic: 88.3 GB total for Table II only works with binary gigabytes).
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

__all__ = ["KIB", "MIB", "GIB", "TIB", "format_bytes", "parse_bytes"]

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

_SUFFIXES = [("TB", TIB), ("GB", GIB), ("MB", MIB), ("KB", KIB), ("B", 1)]

_PARSE_RE = re.compile(
    r"^\s*(?P<num>[0-9]*\.?[0-9]+)\s*(?P<unit>Ti?B|Gi?B|Mi?B|Ki?B|B)?\s*$",
    re.IGNORECASE,
)

_UNIT_MAP = {
    "b": 1,
    "kb": KIB, "kib": KIB,
    "mb": MIB, "mib": MIB,
    "gb": GIB, "gib": GIB,
    "tb": TIB, "tib": TIB,
}


def format_bytes(n: int | float, precision: int = 1) -> str:
    """Render a byte count with the largest suffix that keeps it ≥ 1.

    >>> format_bytes(40.1 * GIB)
    '40.1 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if n < 0:
        raise ConfigurationError(f"negative byte count: {n}")
    for suffix, factor in _SUFFIXES:
        if n >= factor:
            value = n / factor
            if factor == 1:
                return f"{int(n)} B"
            return f"{value:.{precision}f} {suffix}"
    return f"{int(n)} B"


def parse_bytes(text: str | int | float) -> int:
    """Parse '64 GB', '4KiB', '512'... into a byte count.

    Bare numbers are bytes.  Binary prefixes throughout ('GB' == 'GiB').

    >>> parse_bytes("64 GB") == 64 * GIB
    True
    >>> parse_bytes(4096)
    4096
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigurationError(f"negative byte count: {text}")
        return int(text)
    m = _PARSE_RE.match(text)
    if not m:
        raise ConfigurationError(f"unparseable size: {text!r}")
    num = float(m.group("num"))
    unit = (m.group("unit") or "B").lower()
    return int(num * _UNIT_MAP[unit])
