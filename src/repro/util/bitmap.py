"""Word-packed bitmaps used for BFS visited/frontier membership.

NETAL (the C implementation the paper builds on) keeps per-NUMA-node bitmaps
for "visited" and "frontier" membership; the bottom-up step tests frontier
membership once per scanned edge, so the test path must be branch-free and
vectorized.  :class:`Bitmap` packs bits into ``uint64`` words and exposes
batched operations that accept whole index arrays.

Bit order
---------
Bit ``i`` lives in word ``i >> 6`` at position ``i & 63`` (LSB-first), the
same convention as the Graph500 reference code.  ``to_indices`` relies on
``numpy.unpackbits`` over a little-endian byte view, which recovers exactly
this order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Bitmap"]

_WORD_BITS = 64
_WORD_SHIFT = 6
_WORD_MASK = 63


class Bitmap:
    """A fixed-size bitmap over ``[0, size)`` packed into ``uint64`` words.

    Parameters
    ----------
    size:
        Number of addressable bits.  Must be positive.
    words:
        Optional pre-existing word buffer to wrap (shared, not copied).
        Mainly used by :meth:`copy` and the NUMA-partitioned views.

    Examples
    --------
    >>> bm = Bitmap(100)
    >>> bm.set_many(np.array([3, 64, 99]))
    >>> bool(bm.test(64))
    True
    >>> bm.count()
    3
    >>> list(bm.to_indices())
    [3, 64, 99]
    """

    __slots__ = ("size", "words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size <= 0:
            raise ConfigurationError(f"bitmap size must be positive, got {size}")
        self.size = int(size)
        n_words = (self.size + _WORD_BITS - 1) >> _WORD_SHIFT
        if words is None:
            self.words = np.zeros(n_words, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (n_words,):
                raise ConfigurationError(
                    f"word buffer must be uint64[{n_words}], got "
                    f"{words.dtype}[{words.shape}]"
                )
            self.words = words

    # -- construction ------------------------------------------------------

    @classmethod
    def from_indices(cls, size: int, indices: np.ndarray) -> "Bitmap":
        """Build a bitmap of ``size`` bits with ``indices`` set."""
        bm = cls(size)
        bm.set_many(indices)
        return bm

    def copy(self) -> "Bitmap":
        """Deep copy (word buffer duplicated)."""
        return Bitmap(self.size, self.words.copy())

    # -- scalar operations -------------------------------------------------

    def set(self, i: int) -> None:
        """Set bit ``i``."""
        self._check_scalar(i)
        self.words[i >> _WORD_SHIFT] |= np.uint64(1) << np.uint64(i & _WORD_MASK)

    def clear_bit(self, i: int) -> None:
        """Clear bit ``i``."""
        self._check_scalar(i)
        self.words[i >> _WORD_SHIFT] &= ~(np.uint64(1) << np.uint64(i & _WORD_MASK))

    def test(self, i: int) -> bool:
        """Return whether bit ``i`` is set."""
        self._check_scalar(i)
        word = self.words[i >> _WORD_SHIFT]
        return bool((word >> np.uint64(i & _WORD_MASK)) & np.uint64(1))

    def _check_scalar(self, i: int) -> None:
        if not 0 <= i < self.size:
            raise IndexError(f"bit index {i} out of range [0, {self.size})")

    # -- vectorized operations ---------------------------------------------

    def set_many(self, indices: np.ndarray) -> None:
        """Set all bits in ``indices`` (duplicates allowed).

        Equivalent to a loop of atomic ``fetch_or`` in the C implementation;
        here ``np.bitwise_or.at`` provides the unbuffered read-modify-write.
        """
        idx = self._check_vector(indices)
        if idx.size == 0:
            return
        np.bitwise_or.at(
            self.words,
            idx >> _WORD_SHIFT,
            np.uint64(1) << (idx & np.uint64(_WORD_MASK)).astype(np.uint64),
        )

    def clear_many(self, indices: np.ndarray) -> None:
        """Clear all bits in ``indices`` (duplicates allowed)."""
        idx = self._check_vector(indices)
        if idx.size == 0:
            return
        np.bitwise_and.at(
            self.words,
            idx >> _WORD_SHIFT,
            ~(np.uint64(1) << (idx & np.uint64(_WORD_MASK)).astype(np.uint64)),
        )

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        """Return a boolean array: membership of each index.

        This is the bottom-up hot path ("is neighbor ``v`` in the frontier?")
        and is fully vectorized: two gathers, a shift and a mask.
        """
        idx = self._check_vector(indices)
        words = self.words[idx >> _WORD_SHIFT]
        return ((words >> (idx & np.uint64(_WORD_MASK))) & np.uint64(1)).astype(bool)

    def _check_vector(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices)
        if idx.size == 0:
            return idx.astype(np.uint64)
        if idx.min() < 0 or int(idx.max()) >= self.size:
            raise IndexError(
                f"bit indices outside [0, {self.size}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return idx.astype(np.uint64)

    # -- whole-bitmap operations --------------------------------------------

    def clear(self) -> None:
        """Clear every bit (in place)."""
        self.words[:] = 0

    def fill(self) -> None:
        """Set every bit in ``[0, size)``; tail bits of the last word stay 0."""
        self.words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        self._mask_tail()

    def _mask_tail(self) -> None:
        tail = self.size & _WORD_MASK
        if tail:
            self.words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)

    def count(self) -> int:
        """Population count over the whole bitmap."""
        return int(np.sum(np.bitwise_count(self.words), dtype=np.int64))

    def to_indices(self) -> np.ndarray:
        """Return the sorted array of set bit positions (``int64``)."""
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        as_bytes = self.words.view(np.uint8)
        bits = np.unpackbits(as_bytes, bitorder="little")
        return np.flatnonzero(bits[: self.size]).astype(np.int64)

    def to_bool_array(self) -> np.ndarray:
        """Return the dense ``bool[size]`` expansion of the bitmap."""
        as_bytes = self.words.view(np.uint8)
        bits = np.unpackbits(as_bytes, bitorder="little")
        return bits[: self.size].astype(bool)

    # -- algebra -------------------------------------------------------------

    def union_inplace(self, other: "Bitmap") -> "Bitmap":
        """``self |= other`` (sizes must match). Returns ``self``."""
        self._check_compat(other)
        np.bitwise_or(self.words, other.words, out=self.words)
        return self

    def intersect_inplace(self, other: "Bitmap") -> "Bitmap":
        """``self &= other`` (sizes must match). Returns ``self``."""
        self._check_compat(other)
        np.bitwise_and(self.words, other.words, out=self.words)
        return self

    def difference_inplace(self, other: "Bitmap") -> "Bitmap":
        """``self &= ~other`` (sizes must match). Returns ``self``."""
        self._check_compat(other)
        np.bitwise_and(self.words, np.bitwise_not(other.words), out=self.words)
        return self

    def invert_inplace(self) -> "Bitmap":
        """Flip every bit in ``[0, size)``. Returns ``self``."""
        np.bitwise_not(self.words, out=self.words)
        self._mask_tail()
        return self

    def _check_compat(self, other: "Bitmap") -> None:
        if other.size != self.size:
            raise ConfigurationError(
                f"bitmap size mismatch: {self.size} vs {other.size}"
            )

    # -- misc ----------------------------------------------------------------

    def nbytes(self) -> int:
        """Backing-store size in bytes (what the paper's status data counts)."""
        return int(self.words.nbytes)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:  # bitmaps are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"Bitmap(size={self.size}, count={self.count()})"
