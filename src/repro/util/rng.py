"""Deterministic random-number streams.

Every stochastic component of the reproduction (Kronecker sampling, vertex
permutation, root selection) draws from a named child of one master
:class:`numpy.random.SeedSequence`, so a single integer seed reproduces an
entire experiment, and distinct components never share a stream even when
executed in a different order or in parallel.
"""

from __future__ import annotations

import numpy as np
from numpy.random import Generator, PCG64, SeedSequence

__all__ = ["SeedSequence", "derive_rng", "spawn_streams", "DEFAULT_SEED"]

DEFAULT_SEED = 20140519
"""Default master seed (the paper's publication date, for flavour)."""


def derive_rng(seed: int | SeedSequence | None, *path: str) -> Generator:
    """Return a generator for the component identified by ``path``.

    ``path`` components are hashed into the seed material, so
    ``derive_rng(s, "kronecker", "level3")`` is stable across runs and
    independent of ``derive_rng(s, "roots")``.

    >>> a = derive_rng(1, "x").integers(0, 100, 4)
    >>> b = derive_rng(1, "x").integers(0, 100, 4)
    >>> bool((a == b).all())
    True
    """
    if seed is None:
        seed = DEFAULT_SEED
    if isinstance(seed, SeedSequence):
        base = seed
    else:
        base = SeedSequence(int(seed))
    material = list(base.entropy if isinstance(base.entropy, (list, tuple)) else [base.entropy])
    for component in path:
        # Stable 64-bit hash of the component name (FNV-1a).
        h = np.uint64(0xCBF29CE484222325)
        for ch in component.encode():
            h = np.uint64((int(h) ^ ch) * 0x100000001B3 % (1 << 64))
        material.append(int(h))
    return Generator(PCG64(SeedSequence(material)))


def spawn_streams(seed: int | SeedSequence | None, n: int, *path: str) -> list[Generator]:
    """Return ``n`` independent generators for parallel workers.

    Used by the NUMA-partitioned kernels so each simulated node owns its own
    stream (results then do not depend on execution interleaving).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} streams")
    return [derive_rng(seed, *path, f"worker{i}") for i in range(n)]
