"""Fully-external BFS baseline (Pearce et al., the paper's §VII contrast).

Pearce et al. [SC'10, IPDPS'13] traverse graphs that live *entirely* on
NVM, hiding access latency with massive asynchronous multithreading; the
paper quotes their 0.05 GTEPS at SCALE 36 (1 TB DRAM + 12 TB NVM) against
its own 4.22 GTEPS with a higher DRAM:NVM ratio, arguing that keeping the
bottom-up direction's data in DRAM buys orders of magnitude.

:class:`FullyExternalBFS` reproduces the *data placement* of that
approach — the whole CSR (index and value files) on the device, every
edge scan a device read — with two simplifications documented here:

* the traversal is level-synchronous top-down rather than Pearce's
  asynchronous visitor queues (the visitor machinery changes *when* I/O
  happens, not *how much*; with the closed queueing model already
  saturating the device, total service time is governed by the same
  request volume);
* latency hiding by oversubscription is modeled by running the device at
  its saturation throughput (``concurrency`` readers), which is the best
  case the async design strives for.

The baseline exists to reproduce the paper's capacity-performance
trade-off claim: fully-external ≪ semi-external ≪ in-DRAM, with the
semi-external configuration only paying for the sliver of traffic the
hybrid schedule leaves on the device.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.bfs.metrics import BFSResult, Direction, LevelTrace, record_run_spans
from repro.bfs.state import UNVISITED
from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR, offload_csr
from repro.errors import ConfigurationError
from repro.obs.schema import (
    M_BFS_DISCOVERED,
    M_BFS_EDGES,
    M_BFS_FRONTIER,
    M_BFS_LEVEL_SECONDS,
    M_BFS_LEVELS,
    M_BFS_RUNS,
    M_BFS_TRAVERSED,
)
from repro.perfmodel.cost import DramCostModel
from repro.semiext.storage import NVMStore
from repro.util.timer import Timer

__all__ = ["FullyExternalBFS"]


class FullyExternalBFS:
    """Top-down BFS over a CSR resident entirely on simulated NVM."""

    def __init__(
        self,
        external: ExternalCSR,
        store: NVMStore,
        cost_model: DramCostModel | None = None,
        obs=None,
    ) -> None:
        if external.n_rows != external.n_cols:
            raise ConfigurationError("FullyExternalBFS requires a square CSR")
        self.external = external
        self.store = store
        self.cost_model = cost_model
        self.clock = store.clock
        self.obs = obs if obs is not None else store.obs
        self.obs.bind_clock(self.clock)
        self._degrees = external.degrees_uncharged()

    @classmethod
    def offload(
        cls,
        graph: CSRGraph,
        store: NVMStore,
        cost_model: DramCostModel | None = None,
        prefix: str = "external",
        obs=None,
    ) -> "FullyExternalBFS":
        """Write the whole CSR to the store and build the engine."""
        return cls(offload_csr(graph, store, prefix), store, cost_model, obs=obs)

    def run(
        self,
        root: int,
        max_levels: int | None = None,
        checkpointer=None,
    ) -> BFSResult:
        """Run one BFS from ``root``; every edge scan reads the device.

        ``checkpointer`` follows the same level-boundary hook contract as
        :meth:`repro.bfs.hybrid.HybridBFS.run`.
        """
        n = self.external.n_rows
        if not 0 <= root < n:
            raise ConfigurationError(f"root {root} outside [0, {n})")
        parent = np.full(n, UNVISITED, dtype=np.int64)
        parent[root] = root
        frontier = np.array([root], dtype=np.int64)
        return self._traverse(
            parent, frontier, root,
            level=0, max_levels=max_levels, checkpointer=checkpointer,
        )

    def resume(
        self,
        parent: np.ndarray,
        frontier_queue: np.ndarray,
        *,
        root: int,
        level: int,
        max_levels: int | None = None,
        checkpointer=None,
    ) -> BFSResult:
        """Re-enter the top-down loop from restored (parent, frontier).

        The loop carries nothing else, so the continued traversal is
        bit-identical to one that never stopped; traces and times cover
        the resumed portion only.
        """
        return self._traverse(
            np.asarray(parent, dtype=np.int64).copy(),
            np.asarray(frontier_queue, dtype=np.int64),
            root,
            level=level, max_levels=max_levels, checkpointer=checkpointer,
        )

    def _traverse(
        self,
        parent: np.ndarray,
        frontier: np.ndarray,
        root: int,
        *,
        level: int,
        max_levels: int | None,
        checkpointer,
    ) -> BFSResult:
        think = (
            self.cost_model.per_request_think_time_s(
                self.store.chunk_bytes / 8.0
            )
            if self.cost_model is not None
            else 0.0
        )
        traces: list[LevelTrace] = []
        total_wall = Timer()
        modeled_start = self.clock.now()
        obs = self.obs
        obs.counter(M_BFS_RUNS, engine=type(self).__name__).inc()
        level_bounds: list[tuple[float, float]] = []
        io0 = self.store.iostats
        while frontier.size:
            if max_levels is not None and level >= max_levels:
                break
            req0, bytes0, busy0 = (
                io0.n_requests, io0.total_bytes, io0.busy_time_s,
            )
            t0 = self.clock.now()
            wall = Timer()
            with total_wall, wall:
                neighbors, counts = self.external.gather_rows(
                    frontier, think_time_s=think
                )
                scanned = int(counts.sum()) if counts.size else 0
                parents_rep = np.repeat(frontier, counts)
                mask = parent[neighbors] == UNVISITED
                winners, first_idx = np.unique(
                    neighbors[mask], return_index=True
                )
                parent[winners] = parents_rep[mask][first_idx]
                next_frontier = winners
            if self.cost_model is not None:
                # Queue bookkeeping only: edge CPU rode in as think time.
                self.clock.advance(
                    self.cost_model.level_time_s(
                        edges_scanned=0,
                        frontier_size=int(frontier.size),
                        next_size=int(next_frontier.size),
                    )
                )
            t1 = self.clock.now()
            level_bounds.append((t0, t1))
            obs.counter(M_BFS_LEVELS, direction=Direction.TOP_DOWN.value).inc()
            obs.counter(
                M_BFS_EDGES, direction=Direction.TOP_DOWN.value, medium="nvm"
            ).inc(scanned)
            obs.counter(
                M_BFS_DISCOVERED, direction=Direction.TOP_DOWN.value
            ).inc(int(next_frontier.size))
            obs.histogram(M_BFS_LEVEL_SECONDS).observe(t1 - t0)
            obs.histogram(M_BFS_FRONTIER).observe(int(frontier.size))
            obs.track("bfs.frontier_vertices", int(frontier.size))
            traces.append(
                LevelTrace(
                    level=level,
                    direction=Direction.TOP_DOWN,
                    frontier_size=int(frontier.size),
                    next_size=int(next_frontier.size),
                    edges_scanned=scanned,
                    wall_time_s=wall.elapsed,
                    modeled_time_s=t1 - t0,
                    edges_scanned_nvm=scanned,
                    nvm_requests=io0.n_requests - req0,
                    nvm_bytes=io0.total_bytes - bytes0,
                    nvm_time_s=io0.busy_time_s - busy0,
                )
            )
            prev_size = int(frontier.size)
            frontier = next_frontier
            level += 1
            if checkpointer is not None:
                checkpointer(
                    SimpleNamespace(
                        root=root,
                        parent=parent,
                        frontier_queue=frontier,
                        frontier_size=int(frontier.size),
                    ),
                    level,
                    Direction.TOP_DOWN,
                    prev_size,
                    0,
                )
        traversed = int(self._degrees[parent >= 0].sum()) // 2
        obs.counter(M_BFS_TRAVERSED).inc(traversed)
        record_run_spans(
            obs,
            type(self).__name__,
            root,
            modeled_start,
            self.clock.now(),
            traces,
            level_bounds,
        )
        return BFSResult(
            parent=parent,
            root=root,
            traces=tuple(traces),
            traversed_edges=traversed,
            wall_time_s=total_wall.elapsed,
            modeled_time_s=self.clock.now() - modeled_start,
        )

    def __repr__(self) -> str:
        return (
            f"FullyExternalBFS(n={self.external.n_rows}, "
            f"device={self.store.device.name!r})"
        )
