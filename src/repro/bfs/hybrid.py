"""The hybrid BFS engine (paper §III–§IV).

:class:`HybridBFS` runs the level loop shared by every configuration:

1. ask the :class:`~repro.bfs.policies.DirectionPolicy` for the level's
   direction (the paper's α/β rule by default);
2. execute the vectorized top-down or bottom-up step over the
   NUMA-partitioned forward/backward graphs;
3. charge the DRAM cost model (and, in subclasses, collect the NVM device
   charges the step already pushed onto the shared simulated clock);
4. record a :class:`~repro.bfs.metrics.LevelTrace`.

The engine is deterministic: given (graph, root, policy) the parent array,
the traces and the modeled time are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottomup import BottomUpScanner, InMemoryScanner, bottom_up_step
from repro.bfs.parallel import ShardExecutor
from repro.bfs.metrics import BFSResult, Direction, LevelTrace, record_run_spans
from repro.bfs.policies import DirectionPolicy, PolicyInputs
from repro.bfs.state import BFSState
from repro.bfs.topdown import top_down_step
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.errors import ConfigurationError, DeviceFailedError
from repro.obs.schema import (
    M_BFS_DEGRADED,
    M_BFS_DISCOVERED,
    M_BFS_EDGES,
    M_BFS_FRONTIER,
    M_BFS_LEVEL_SECONDS,
    M_BFS_LEVELS,
    M_BFS_RUNS,
    M_BFS_TRAVERSED,
)
from repro.obs.session import NULL, Observability
from repro.perfmodel.cost import DramCostModel
from repro.semiext.clock import SimulatedClock
from repro.util.timer import Timer

__all__ = ["HybridBFS"]


class HybridBFS:
    """Direction-optimizing BFS with both graphs in DRAM.

    This is the paper's *DRAM-only* scenario (and, with a
    :class:`~repro.bfs.policies.FixedPolicy`, its single-direction
    baselines).

    Parameters
    ----------
    forward:
        Column-partitioned forward graph (top-down direction).
    backward:
        Row-partitioned backward graph (bottom-up direction).
    policy:
        Direction policy; the paper's rule is
        :class:`~repro.bfs.policies.AlphaBetaPolicy`.
    cost_model:
        DRAM cost model for modeled time; ``None`` disables the DRAM-side
        charges (subclasses' device charges, if any, still tick the
        shared clock).
    clock:
        Simulated clock to charge; created fresh per engine if omitted.
    n_workers:
        Fan the per-NUMA-shard scans out on a thread pool of this size
        (results bit-identical to sequential; see
        :mod:`repro.bfs.parallel`).  ``None`` runs sequentially.
    obs:
        Observability session recording the ``bfs.*`` metrics and the
        ``bfs.run`` / ``bfs.phase`` / ``bfs.level`` spans (see
        ``docs/observability.md``).  Defaults to the disabled
        :data:`~repro.obs.NULL` session.
    """

    def __init__(
        self,
        forward: ForwardGraph,
        backward: BackwardGraph,
        policy: DirectionPolicy,
        cost_model: DramCostModel | None = None,
        clock: SimulatedClock | None = None,
        n_workers: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        if forward.n_vertices != backward.n_vertices:
            raise ConfigurationError(
                "forward/backward graphs disagree on vertex count"
            )
        if forward.topology != backward.topology:
            raise ConfigurationError("forward/backward graphs disagree on topology")
        self.forward = forward
        self.backward = backward
        self.topology = forward.topology
        self.policy = policy
        self.cost_model = cost_model
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = obs if obs is not None else NULL
        self.obs.bind_clock(self.clock)
        self.n_vertices = forward.n_vertices
        # Global degrees drive Beamer-style policies and the TEPS numerator.
        self._degrees = backward.global_degrees()
        self._total_directed = int(self._degrees.sum())
        self._scanners = self._make_scanners()
        self.executor = (
            ShardExecutor(n_workers) if n_workers is not None else None
        )

    # -- extension points (overridden by the semi-external engine) -----------------

    def _top_down_shards(self) -> list:
        """Adjacency sources for the top-down step."""
        return list(self.forward.shards)

    def _make_scanners(self) -> list[BottomUpScanner]:
        """Bottom-up scanners, one per NUMA shard."""
        return [InMemoryScanner(s) for s in self.backward.shards]

    def _think_time_s(self) -> float:
        """Per-request CPU overlap for the NVM queueing model (unused here)."""
        return 0.0

    def _device_health(self) -> float:
        """Health of the device behind top-down reads (1.0 = no device)."""
        return 1.0

    def _effective_direction(self, direction: Direction) -> Direction:
        """Final say on a level's direction (degraded-mode override)."""
        return direction

    def _active_scanners(self) -> list[BottomUpScanner]:
        """Scanners the bottom-up step should use right now."""
        return self._scanners

    def _enter_degraded(self) -> bool:
        """React to a mid-level device failure.

        Returns ``True`` when the engine can continue in degraded mode
        (bottom-up only, in-DRAM backward graph); the base engine has no
        device, so a device failure reaching it is a bug — re-raise.
        """
        return False

    @property
    def degraded_mode(self) -> bool:
        """Whether the engine has abandoned the device for this lifetime."""
        return False

    def _io_counters(self) -> tuple[int, int, float]:
        """(requests, bytes, busy seconds) issued so far; none in DRAM."""
        return 0, 0, 0.0

    def _charge_level(
        self,
        direction: Direction,
        scanned_dram: int,
        scanned_nvm: int,
        frontier_size: int,
        next_size: int,
    ) -> None:
        """Charge the DRAM cost model for one level.

        The base engine charges every probe; the semi-external engine
        overrides this to charge only DRAM-resident probes, because the
        CPU work on NVM-fetched edges already entered the device queueing
        model as per-request think time.
        """
        if self.cost_model is None:
            return
        self.clock.advance(
            self.cost_model.level_time_s(
                edges_scanned=scanned_dram + scanned_nvm,
                frontier_size=frontier_size,
                next_size=next_size,
            )
        )

    # -- the level loop ------------------------------------------------------------

    def run(
        self,
        root: int,
        max_levels: int | None = None,
        checkpointer=None,
    ) -> BFSResult:
        """Run one BFS from ``root`` and return its result.

        ``max_levels`` is a safety valve for tests; a valid input graph
        never needs it (the frontier empties by itself).  ``checkpointer``
        is an optional callable invoked at every level boundary with
        ``(state, level, direction, prev_frontier, visited_deg_sum)`` —
        the recovery layer's hook for persisting an epoch (and for seeded
        crash injection, which raises
        :class:`~repro.errors.ProcessCrashError` through this loop).
        """
        state = BFSState(self.n_vertices, self.topology, root)
        self.policy.reset()
        return self._traverse(
            state,
            level=0,
            direction=Direction.TOP_DOWN,
            prev_frontier=0,
            visited_deg_sum=int(self._degrees[root]),
            max_levels=max_levels,
            checkpointer=checkpointer,
        )

    def resume(
        self,
        state: BFSState,
        *,
        level: int,
        direction: Direction,
        prev_frontier: int,
        visited_deg_sum: int,
        max_levels: int | None = None,
        checkpointer=None,
    ) -> BFSResult:
        """Re-enter the level loop from restored mid-run state.

        The cursor arguments are exactly the loop-carried values a
        checkpoint records (see :mod:`repro.recovery`).  The direction
        policy is stateless between levels, so restoring these plus the
        :class:`~repro.bfs.state.BFSState` makes the continued traversal
        bit-identical to one that never stopped.  The returned result's
        traces and times cover the resumed portion only; the parent array
        is the full tree.
        """
        self.policy.reset()
        return self._traverse(
            state,
            level=level,
            direction=direction,
            prev_frontier=prev_frontier,
            visited_deg_sum=visited_deg_sum,
            max_levels=max_levels,
            checkpointer=checkpointer,
        )

    def _traverse(
        self,
        state: BFSState,
        *,
        level: int,
        direction: Direction,
        prev_frontier: int,
        visited_deg_sum: int,
        max_levels: int | None,
        checkpointer,
    ) -> BFSResult:
        root = state.root
        traces: list[LevelTrace] = []
        total_wall = Timer()
        modeled_start = self.clock.now()
        obs = self.obs
        obs.counter(M_BFS_RUNS, engine=type(self).__name__).inc()
        level_bounds: list[tuple[float, float]] = []
        while state.frontier_size > 0:
            if max_levels is not None and level >= max_levels:
                break
            frontier_size = state.frontier_size
            frontier_edges = int(self._degrees[state.frontier_queue].sum())
            direction = self.policy.decide(
                PolicyInputs(
                    level=level,
                    current=direction,
                    n_frontier=frontier_size,
                    n_frontier_prev=prev_frontier,
                    n_all=self.n_vertices,
                    frontier_edges=frontier_edges,
                    unvisited_edges=self._total_directed - visited_deg_sum,
                    device_health=self._device_health(),
                )
            )
            direction = self._effective_direction(direction)
            was_degraded = self.degraded_mode
            io_req0, io_bytes0, io_busy0 = self._io_counters()
            t_level0 = self.clock.now()
            wall = Timer()
            with total_wall, wall:
                try:
                    if direction is Direction.TOP_DOWN:
                        next_queue, scanned_dram, scanned_nvm = top_down_step(
                            self._top_down_shards(),
                            state,
                            self._think_time_s(),
                            executor=self.executor,
                            obs=obs,
                        )
                    else:
                        next_queue, scanned_dram, scanned_nvm = bottom_up_step(
                            self._active_scanners(),
                            state,
                            executor=self.executor,
                            obs=obs,
                        )
                except DeviceFailedError:
                    # The device died (or its breaker opened) mid-level.
                    # No discovery was committed before the raise, so the
                    # level re-runs bottom-up on the in-DRAM backward
                    # graph; the attempts already paid are on the clock.
                    if not self._enter_degraded():
                        raise
                    direction = Direction.BOTTOM_UP
                    next_queue, scanned_dram, scanned_nvm = bottom_up_step(
                        self._active_scanners(),
                        state,
                        executor=self.executor,
                        obs=obs,
                    )
            scanned = scanned_dram + scanned_nvm
            self._charge_level(
                direction,
                scanned_dram,
                scanned_nvm,
                frontier_size,
                int(next_queue.size),
            )
            io_req1, io_bytes1, io_busy1 = self._io_counters()
            t_level1 = self.clock.now()
            level_bounds.append((t_level0, t_level1))
            dirname = direction.value
            obs.counter(M_BFS_LEVELS, direction=dirname).inc()
            obs.counter(M_BFS_EDGES, direction=dirname, medium="dram").inc(
                scanned_dram
            )
            if scanned_nvm:
                obs.counter(M_BFS_EDGES, direction=dirname, medium="nvm").inc(
                    scanned_nvm
                )
            obs.counter(M_BFS_DISCOVERED, direction=dirname).inc(
                int(next_queue.size)
            )
            if was_degraded or self.degraded_mode:
                obs.counter(M_BFS_DEGRADED).inc()
            obs.histogram(M_BFS_LEVEL_SECONDS).observe(t_level1 - t_level0)
            obs.histogram(M_BFS_FRONTIER).observe(frontier_size)
            obs.track("bfs.frontier_vertices", frontier_size)
            traces.append(
                LevelTrace(
                    level=level,
                    direction=direction,
                    frontier_size=frontier_size,
                    next_size=int(next_queue.size),
                    edges_scanned=scanned,
                    wall_time_s=wall.elapsed,
                    modeled_time_s=self.clock.now() - t_level0,
                    edges_scanned_nvm=scanned_nvm,
                    nvm_requests=io_req1 - io_req0,
                    nvm_bytes=io_bytes1 - io_bytes0,
                    nvm_time_s=io_busy1 - io_busy0,
                    degraded=was_degraded or self.degraded_mode,
                )
            )
            visited_deg_sum += int(self._degrees[next_queue].sum())
            prev_frontier = frontier_size
            state.promote_next(next_queue)
            level += 1
            if checkpointer is not None:
                checkpointer(
                    state, level, direction, prev_frontier, visited_deg_sum
                )
        traversed = int(self._degrees[state.parent >= 0].sum()) // 2
        obs.counter(M_BFS_TRAVERSED).inc(traversed)
        record_run_spans(
            obs,
            type(self).__name__,
            root,
            modeled_start,
            self.clock.now(),
            traces,
            level_bounds,
        )
        return BFSResult(
            parent=state.parent,
            root=root,
            traces=tuple(traces),
            traversed_edges=traversed,
            wall_time_s=total_wall.elapsed,
            modeled_time_s=self.clock.now() - modeled_start,
        )

    def close(self) -> None:
        """Release the shard thread pool, if any (idempotent)."""
        if self.executor is not None:
            self.executor.close()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n_vertices}, "
            f"policy={self.policy!r})"
        )
