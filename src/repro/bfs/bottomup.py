"""Vectorized bottom-up BFS step with exact early termination (Figure 2).

Every *unvisited* vertex ``w`` scans its neighbour list for a frontier
member ``v``; at the first hit it sets ``tree(w) ← v`` and **stops
scanning** — the early termination that makes the bottom-up direction so
cheap on the big middle levels.

Vectorization subtlety: the kernel gathers whole adjacency rows and then
computes, per row, the index of the first frontier hit
(:func:`~repro.util.gather.first_true_per_segment`).  DRAM bytes are thus
over-read relative to a scalar implementation, but the *scanned-edge
counts are exact* — they stop at the hit — and those counts are what feed
the cost model, Figure 10's traversal split and Figure 14's offload access
ratios.  For the partially NVM-resident backward graph the early exit is
honoured for real: the NVM suffix of a row is only fetched when the DRAM
prefix produced no hit (§V-C's "read vertices on DRAM, then continue to
read vertices on NVM in a streaming fashion").

Scanning happens shard-by-shard (the backward graph is row-partitioned per
NUMA node) through the small :class:`BottomUpScanner` protocol, so the
same step drives in-DRAM shards and the partially offloaded shards of
:mod:`repro.semiext.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.csr.graph import CSRGraph
from repro.bfs.state import BFSState
from repro.util.bitmap import Bitmap
from repro.util.gather import concat_ranges, first_true_per_segment

__all__ = ["ScanOutcome", "BottomUpScanner", "InMemoryScanner", "bottom_up_step"]


@dataclass(frozen=True)
class ScanOutcome:
    """Result of scanning a batch of unvisited rows against the frontier.

    ``parents[i]`` is the discovered parent of row ``i`` or ``-1``;
    ``scanned_dram`` / ``scanned_nvm`` count edge probes by residence of
    the probed adjacency entry (all-DRAM shards report ``scanned_nvm=0``).
    """

    parents: np.ndarray
    scanned_dram: int
    scanned_nvm: int

    @property
    def scanned(self) -> int:
        """Total edge probes of the batch."""
        return self.scanned_dram + self.scanned_nvm


class BottomUpScanner(Protocol):
    """A backward-graph shard that can scan rows against a frontier."""

    def scan(self, local_rows: np.ndarray, frontier: Bitmap) -> ScanOutcome:
        """Scan the given *local* rows; see :class:`ScanOutcome`."""
        ...


class InMemoryScanner:
    """Bottom-up scanning over an in-DRAM backward shard."""

    def __init__(self, shard: CSRGraph) -> None:
        self.shard = shard

    def scan(self, local_rows: np.ndarray, frontier: Bitmap) -> ScanOutcome:
        """Scan rows against the frontier with exact early termination."""
        starts, counts = self.shard.row_extents(local_rows)
        neighbors = self.shard.adj[concat_ranges(starts, counts)]
        if neighbors.size == 0:
            return ScanOutcome(
                parents=np.full(local_rows.size, -1, dtype=np.int64),
                scanned_dram=0,
                scanned_nvm=0,
            )
        hits = frontier.test_many(neighbors)
        hit_at, scanned = first_true_per_segment(hits, counts)
        parents = np.full(local_rows.size, -1, dtype=np.int64)
        found = hit_at >= 0
        parents[found] = neighbors[hit_at[found]]
        return ScanOutcome(
            parents=parents,
            scanned_dram=int(scanned.sum()),
            scanned_nvm=0,
        )


def bottom_up_step(
    scanners: list[BottomUpScanner],
    state: BFSState,
    rows_per_block: int = 1 << 17,
    executor=None,
    obs=None,
) -> tuple[np.ndarray, int, int]:
    """Run one bottom-up level across all NUMA shards.

    Parameters
    ----------
    scanners:
        One :class:`BottomUpScanner` per NUMA node (row-partitioned).
    state:
        Mutable BFS state; the per-node unvisited candidate lists are
        pruned in place and discoveries committed.
    rows_per_block:
        Batch size bounding peak gather memory (hubs aside, a block
        touches ``rows_per_block × avg_degree`` adjacency entries).
    executor:
        Optional :class:`~repro.bfs.parallel.ShardExecutor`; each NUMA
        node's scan runs as one task.  Scans are read-only against the
        level-frozen state (candidate pruning touches only node-local
        lists), and discoveries are committed serially afterwards, so
        the parent tree is identical to a sequential run.
    obs:
        Optional :class:`~repro.obs.Observability`; when enabled and the
        step runs sequentially, each NUMA node's scan is wrapped in a
        ``bfs.shard`` span.  Under an executor the scans interleave on
        the shared clock, so no per-shard spans are recorded (the
        ``bfs.level`` span still brackets the whole step).

    Returns
    -------
    (next_queue, edges_scanned_dram, edges_scanned_nvm):
        Newly discovered vertices (sorted) and exact probe counts split by
        residence of the probed data.
    """
    frontier = state.frontier_as_bitmap()
    partitions = state.topology.partitions(state.n_vertices)

    def scan_node(args):
        part, scanner = args
        cand = state.unvisited_candidates(part.node)
        winners_parts: list[np.ndarray] = []
        parents_parts: list[np.ndarray] = []
        dram = 0
        nvm = 0
        for blk_start in range(0, cand.size, rows_per_block):
            block = cand[blk_start : blk_start + rows_per_block]
            outcome = scanner.scan(block - part.lo, frontier)
            dram += outcome.scanned_dram
            nvm += outcome.scanned_nvm
            found = outcome.parents >= 0
            if found.any():
                winners_parts.append(block[found])
                parents_parts.append(outcome.parents[found])
        if winners_parts:
            return (
                np.concatenate(winners_parts),
                np.concatenate(parents_parts),
                dram,
                nvm,
            )
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, dram, nvm

    tasks = list(zip(partitions, scanners))
    if executor is not None:
        results = executor.map(scan_node, tasks)
    elif obs is not None and obs.enabled:
        results = []
        for task in tasks:
            with obs.span(
                "bfs.shard",
                shard=int(task[0].node),
                direction="bottom-up",
            ) as sp:
                result = scan_node(task)
            sp.set(edges_dram=result[2], edges_nvm=result[3])
            results.append(result)
    else:
        results = [scan_node(t) for t in tasks]

    next_parts: list[np.ndarray] = []
    scanned_dram = 0
    scanned_nvm = 0
    for winners, parents, dram, nvm in results:
        scanned_dram += dram
        scanned_nvm += nvm
        if winners.size:
            state.discover(winners, parents)
            next_parts.append(winners)
    if next_parts:
        next_queue = np.concatenate(next_parts)
        next_queue.sort()
    else:
        next_queue = np.empty(0, dtype=np.int64)
    return next_queue, scanned_dram, scanned_nvm
