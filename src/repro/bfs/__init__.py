"""Hybrid (direction-optimizing) BFS engines — the paper's core contribution.

Three engines share one level loop:

* :class:`HybridBFS` — everything in DRAM (the paper's *DRAM-only*
  scenario and the NETAL baseline);
* :class:`SemiExternalBFS` — the forward graph on simulated NVM, read in
  ≤4 KB chunks during top-down levels (*DRAM+PCIeFlash* / *DRAM+SSD*),
  optionally with the backward graph partially offloaded (§VI-E);
* :class:`ReferenceBFS` — the Graph500 v2.1.4-style plain top-down queue
  BFS used as the paper's lower baseline;
* :class:`FullyExternalBFS` — a Pearce-style everything-on-NVM baseline
  for the paper's §VII capacity/performance comparison.

Direction selection is pluggable via :mod:`~repro.bfs.policies`; the
paper's α/β rule is :class:`AlphaBetaPolicy`.
"""

from repro.bfs.fully_external import FullyExternalBFS
from repro.bfs.hybrid import HybridBFS
from repro.bfs.metrics import BFSResult, Direction, LevelTrace
from repro.bfs.policies import (
    AlphaBetaPolicy,
    BeamerPolicy,
    DirectionPolicy,
    FixedPolicy,
    TieredKPolicy,
)
from repro.bfs.reference import ReferenceBFS
from repro.bfs.semi_external import SemiExternalBFS
from repro.bfs.state import BFSState

__all__ = [
    "HybridBFS",
    "FullyExternalBFS",
    "SemiExternalBFS",
    "ReferenceBFS",
    "BFSState",
    "BFSResult",
    "LevelTrace",
    "Direction",
    "DirectionPolicy",
    "AlphaBetaPolicy",
    "BeamerPolicy",
    "FixedPolicy",
    "TieredKPolicy",
]
