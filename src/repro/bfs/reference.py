"""Graph500 v2.1.4-style reference BFS (the paper's lower baseline).

The reference code is a plain level-synchronous *top-down only* BFS over a
single unpartitioned CSR with a shared output queue — no direction
optimization, no NUMA placement, no visited bitmap (it tests the parent
array directly).  On the paper's machine it reaches 0.04 GTEPS versus
NETAL's 0.6 GTEPS top-down and 5.12 GTEPS hybrid (Fig. 8).

This engine reproduces those structural handicaps:

* top-down every level (so it scans all ``2M`` directed edges);
* NUMA-blind memory layout — modeled time uses
  :meth:`DramCostModel.reference`, which charges ¾ of probes as remote
  and collapses effective parallelism to reflect shared-queue contention;
* duplicate discoveries resolved per level through a sort (the reference
  dedups through its shared queue).

The parent trees it produces validate identically to the hybrid engines'.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.metrics import BFSResult, Direction, LevelTrace, record_run_spans
from repro.bfs.state import UNVISITED
from repro.csr.graph import CSRGraph
from repro.errors import ConfigurationError
from repro.obs.schema import (
    M_BFS_DISCOVERED,
    M_BFS_EDGES,
    M_BFS_FRONTIER,
    M_BFS_LEVEL_SECONDS,
    M_BFS_LEVELS,
    M_BFS_RUNS,
    M_BFS_TRAVERSED,
)
from repro.obs.session import NULL
from repro.perfmodel.cost import DramCostModel
from repro.semiext.clock import SimulatedClock
from repro.util.gather import concat_ranges
from repro.util.timer import Timer

__all__ = ["ReferenceBFS"]


class ReferenceBFS:
    """The unoptimized top-down baseline over a single CSR."""

    def __init__(
        self,
        graph: CSRGraph,
        cost_model: DramCostModel | None = None,
        clock: SimulatedClock | None = None,
        obs=None,
    ) -> None:
        if graph.n_rows != graph.n_cols:
            raise ConfigurationError("ReferenceBFS requires a square CSR")
        self.graph = graph
        self.cost_model = (
            cost_model.reference() if cost_model is not None else None
        )
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = obs if obs is not None else NULL
        self.obs.bind_clock(self.clock)
        self._degrees = graph.degrees()

    def run(self, root: int, max_levels: int | None = None) -> BFSResult:
        """Run one reference BFS from ``root``."""
        n = self.graph.n_rows
        if not 0 <= root < n:
            raise ConfigurationError(f"root {root} outside [0, {n})")
        parent = np.full(n, UNVISITED, dtype=np.int64)
        parent[root] = root
        frontier = np.array([root], dtype=np.int64)
        traces: list[LevelTrace] = []
        total_wall = Timer()
        modeled_start = self.clock.now()
        obs = self.obs
        obs.counter(M_BFS_RUNS, engine=type(self).__name__).inc()
        level_bounds: list[tuple[float, float]] = []
        level = 0
        while frontier.size:
            if max_levels is not None and level >= max_levels:
                break
            wall = Timer()
            with total_wall, wall:
                starts, counts = self.graph.row_extents(frontier)
                neighbors = self.graph.adj[concat_ranges(starts, counts)]
                scanned = int(counts.sum()) if counts.size else 0
                parents_rep = np.repeat(frontier, counts)
                # The reference checks the parent array itself (no bitmap).
                mask = parent[neighbors] == UNVISITED
                cand_w = neighbors[mask]
                cand_v = parents_rep[mask]
                winners, first_idx = np.unique(cand_w, return_index=True)
                parent[winners] = cand_v[first_idx]
                next_frontier = winners
            t0 = self.clock.now()
            if self.cost_model is not None:
                self.clock.advance(
                    self.cost_model.level_time_s(
                        edges_scanned=scanned,
                        frontier_size=int(frontier.size),
                        next_size=int(next_frontier.size),
                    )
                )
            t1 = self.clock.now()
            level_bounds.append((t0, t1))
            obs.counter(M_BFS_LEVELS, direction=Direction.TOP_DOWN.value).inc()
            obs.counter(
                M_BFS_EDGES, direction=Direction.TOP_DOWN.value, medium="dram"
            ).inc(scanned)
            obs.counter(
                M_BFS_DISCOVERED, direction=Direction.TOP_DOWN.value
            ).inc(int(next_frontier.size))
            obs.histogram(M_BFS_LEVEL_SECONDS).observe(t1 - t0)
            obs.histogram(M_BFS_FRONTIER).observe(int(frontier.size))
            obs.track("bfs.frontier_vertices", int(frontier.size))
            traces.append(
                LevelTrace(
                    level=level,
                    direction=Direction.TOP_DOWN,
                    frontier_size=int(frontier.size),
                    next_size=int(next_frontier.size),
                    edges_scanned=scanned,
                    wall_time_s=wall.elapsed,
                    modeled_time_s=t1 - t0,
                )
            )
            frontier = next_frontier
            level += 1
        traversed = int(self._degrees[parent >= 0].sum()) // 2
        obs.counter(M_BFS_TRAVERSED).inc(traversed)
        record_run_spans(
            obs,
            type(self).__name__,
            root,
            modeled_start,
            self.clock.now(),
            traces,
            level_bounds,
        )
        return BFSResult(
            parent=parent,
            root=root,
            traces=tuple(traces),
            traversed_edges=traversed,
            wall_time_s=total_wall.elapsed,
            modeled_time_s=self.clock.now() - modeled_start,
        )

    def __repr__(self) -> str:
        return f"ReferenceBFS(n={self.graph.n_rows})"
