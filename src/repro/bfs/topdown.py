"""Vectorized top-down BFS step (paper Figure 1).

For every vertex ``v`` in the frontier, scan its neighbours ``w``; the
first frontier vertex to reach an unvisited ``w`` becomes its parent
(``tree(w) ← v`` under an atomic check in NETAL; here a stable
first-occurrence reduction provides the same "exactly one parent wins"
semantics deterministically).

The step runs once per NUMA shard of the forward graph: shard ``k``
contains only destinations owned by node ``k`` (frontier duplicated across
shards, §V-B2 / Fig. 6), so discoveries from different shards can never
collide and the per-shard results concatenate without conflict resolution —
the vectorized analogue of NETAL writing node-local tree/bitmap entries
only.

Execution is two-phase: a read-only *scan* per shard (optionally fanned
out on a :class:`~repro.bfs.parallel.ShardExecutor`, mirroring NETAL's
per-node thread teams) followed by a serial *commit* that applies any
deferred NVM charges in shard order and installs the discoveries — so
parallel runs are bit-identical to sequential ones.

Adjacency may come from an in-DRAM :class:`~repro.csr.graph.CSRGraph` or a
semi-external :class:`~repro.csr.io.ExternalCSR`; the latter charges the
device model for the index-file and 4 KB-chunked value-file reads exactly
as §V-C describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR
from repro.bfs.parallel import ShardExecutor
from repro.bfs.state import BFSState
from repro.util.gather import concat_ranges

__all__ = ["gather_adjacency", "top_down_step"]


def gather_adjacency(
    shard: CSRGraph | ExternalCSR,
    rows: np.ndarray,
    think_time_s: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Fetch the concatenated adjacency of ``rows`` from a shard.

    Returns ``(neighbors, counts)``.  The DRAM path is two gathers; the
    external path additionally meters the NVM device.
    """
    if isinstance(shard, ExternalCSR):
        return shard.gather_rows(rows, think_time_s=think_time_s)
    starts, counts = shard.row_extents(rows)
    neighbors = shard.adj[concat_ranges(starts, counts)]
    return neighbors, counts


@dataclass
class _ShardScan:
    """One shard's read-only scan result, awaiting commit."""

    winners: np.ndarray
    parents: np.ndarray
    scanned: int
    is_external: bool
    charges: list = field(default_factory=list)


def _scan_shard(
    shard: CSRGraph | ExternalCSR,
    frontier: np.ndarray,
    state: BFSState,
) -> _ShardScan:
    """Scan one shard against the level-frozen state (no mutation)."""
    is_external = isinstance(shard, ExternalCSR)
    if is_external:
        neighbors, counts, charges = shard.gather_rows_deferred(frontier)
    else:
        starts, counts = shard.row_extents(frontier)
        neighbors = shard.adj[concat_ranges(starts, counts)]
        charges = []
    scanned = int(counts.sum()) if counts.size else 0
    empty = np.empty(0, dtype=np.int64)
    if neighbors.size == 0:
        return _ShardScan(empty, empty, scanned, is_external, charges)
    parents = np.repeat(frontier, counts)
    unvisited = ~state.visited.test_many(neighbors)
    if not unvisited.any():
        return _ShardScan(empty, empty, scanned, is_external, charges)
    cand_w = neighbors[unvisited]
    cand_v = parents[unvisited]
    # First-parent-wins: np.unique returns the first occurrence index of
    # each duplicate, matching the "first atomic CAS wins" outcome of the
    # parallel original (deterministically: lowest frontier position wins).
    winners, first_idx = np.unique(cand_w, return_index=True)
    return _ShardScan(
        winners, cand_v[first_idx].copy(), scanned, is_external, charges
    )


def top_down_step(
    shards: list[CSRGraph | ExternalCSR],
    state: BFSState,
    think_time_s: float = 0.0,
    executor: ShardExecutor | None = None,
    obs=None,
) -> tuple[np.ndarray, int, int]:
    """Expand the frontier one level in the top-down direction.

    Parameters
    ----------
    shards:
        Forward-graph shards, one per NUMA node, each covering all ``n``
        rows with destinations restricted to that node's vertex range.
    state:
        Mutable BFS state; discovered vertices are committed in place.
    think_time_s:
        Per-request CPU overlap passed to the device queueing model when a
        shard is external.
    executor:
        Optional thread pool fanning the per-shard scans out (results are
        identical either way).
    obs:
        Optional :class:`~repro.obs.Observability`; when enabled, each
        shard's serial charge-commit is wrapped in a ``bfs.shard`` span
        (the only clock-advancing part of the step, so span durations
        are exact on the simulated-time axis even under the executor).

    Returns
    -------
    (next_queue, edges_scanned_dram, edges_scanned_nvm):
        The discovered vertices (sorted, duplicate-free) and the number of
        edge probes split by residence of the scanned adjacency — the
        top-down direction always scans every out-edge of the frontier,
        which is exactly why the paper keeps this direction *off* the
        critical path when the forward graph lives on NVM.
    """
    frontier = state.frontier_queue

    def scan(shard):
        return _scan_shard(shard, frontier, state)

    if executor is not None:
        scans = executor.map(scan, shards)
    else:
        scans = [scan(s) for s in shards]

    # Commit phase: serial, in shard order — deterministic charges and
    # discoveries regardless of scan interleaving.  All charges are
    # applied before any discovery is installed: a charge may raise
    # (device failure under fault injection), and an un-mutated state
    # lets the engine re-run the level bottom-up on the DRAM graph.
    next_parts: list[np.ndarray] = []
    scanned_dram = 0
    scanned_nvm = 0
    tracing = obs is not None and obs.enabled
    for k, outcome in enumerate(scans):
        if tracing and outcome.charges:
            with obs.span(
                "bfs.shard",
                shard=k,
                direction="top-down",
                edges=outcome.scanned,
            ):
                for charge in outcome.charges:
                    charge.apply(think_time_s)
        else:
            for charge in outcome.charges:
                charge.apply(think_time_s)
        if outcome.is_external:
            scanned_nvm += outcome.scanned
        else:
            scanned_dram += outcome.scanned
    for outcome in scans:
        if outcome.winners.size:
            state.discover(outcome.winners, outcome.parents)
            next_parts.append(outcome.winners)
    if next_parts:
        next_queue = np.concatenate(next_parts)
        next_queue.sort()
    else:
        next_queue = np.empty(0, dtype=np.int64)
    return next_queue, scanned_dram, scanned_nvm
