"""Optional thread-pool execution of per-NUMA-shard work.

NETAL runs one OS thread per core, pinned per NUMA node.  This module
provides the software analogue for the vectorized kernels: the per-shard
*scan* phase of each step (the NumPy-heavy gathers and reductions, which
release the GIL for most of their runtime) can run on a
:class:`concurrent.futures.ThreadPoolExecutor`, while the *commit* phase
(writing parents, setting visited bits) stays on the calling thread.

The two-phase split is what keeps parallel execution deterministic and
race-free:

* top-down shards are destination-disjoint, bottom-up shards are
  row-disjoint — scans never produce conflicting discoveries;
* scans only read the level-frozen state (visited bitmap, frontier), so
  thread interleaving cannot change any result;
* commits are serialized in shard order, making the parent array
  bit-identical to the sequential engine's (asserted in the test suite).

Use :class:`ShardExecutor` through the engines' ``n_workers`` argument;
``None`` (default) keeps everything sequential.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = ["ShardExecutor"]

T = TypeVar("T")
R = TypeVar("R")


class ShardExecutor:
    """Maps shard work onto a bounded thread pool, preserving order.

    Parameters
    ----------
    n_workers:
        Pool size; typically the simulated NUMA node count (one worker
        per shard saturates the available parallelism of the partitioned
        layout).
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1: {n_workers}")
        self.n_workers = int(n_workers)
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-shard"
        )

    def map(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order.

        Exceptions from any task propagate to the caller (after all
        submitted tasks have been scheduled), matching sequential
        semantics closely enough for the engines' error paths.
        """
        pool = self._pool
        if pool is None:
            raise ConfigurationError("executor already closed")
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
