"""BFS run results and per-level traces.

Every engine returns a :class:`BFSResult` carrying the parent tree plus a
:class:`LevelTrace` per level.  The traces are the raw material of the
paper's evaluation figures: traversed-edge splits by direction (Fig. 10),
per-level average degree and degradation ratios (Fig. 11), and the
direction-switch schedule the α/β discussion describes (§VI-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.obs.registry import MetricsRegistry
from repro.obs.schema import (
    M_BFS_DEGRADED,
    M_BFS_DISCOVERED,
    M_BFS_EDGES,
    M_BFS_FRONTIER,
    M_BFS_LEVEL_SECONDS,
    M_BFS_LEVELS,
    M_BFS_TRAVERSED,
)

__all__ = ["Direction", "LevelTrace", "BFSResult", "record_run_spans"]


class Direction(enum.Enum):
    """Search direction of one BFS level."""

    TOP_DOWN = "top-down"
    BOTTOM_UP = "bottom-up"


@dataclass(frozen=True)
class LevelTrace:
    """Measurements of one BFS level.

    Attributes
    ----------
    level:
        0-based BFS depth (level 0 expands the root).
    direction:
        Direction chosen by the policy for this level.
    frontier_size:
        Vertices in the frontier entering the level.
    next_size:
        Vertices discovered by the level.
    edges_scanned:
        Edge probes actually performed: all frontier out-edges for
        top-down; early-termination-exact counts for bottom-up.
    edges_scanned_nvm:
        The subset of ``edges_scanned`` whose adjacency entry resided on
        NVM (forward-graph reads in semi-external top-down levels;
        backward-suffix reads under partial offloading).
    wall_time_s:
        Real elapsed time of the level.
    modeled_time_s:
        Simulated time (DRAM cost model + NVM device charges).
    nvm_requests / nvm_bytes:
        Device requests issued by the level (0 for in-DRAM levels).
    nvm_time_s:
        Portion of ``modeled_time_s`` spent in device service.
    degraded:
        The level ran in degraded mode: the device circuit breaker was
        open (or opened mid-level), so the level executed bottom-up on
        the in-DRAM backward graph regardless of what the policy chose.
    """

    level: int
    direction: Direction
    frontier_size: int
    next_size: int
    edges_scanned: int
    wall_time_s: float
    modeled_time_s: float
    edges_scanned_nvm: int = 0
    nvm_requests: int = 0
    nvm_bytes: int = 0
    nvm_time_s: float = 0.0
    degraded: bool = False

    @property
    def avg_degree(self) -> float:
        """Average edges scanned per frontier vertex (Fig. 11's x axis)."""
        if self.frontier_size == 0:
            return 0.0
        return self.edges_scanned / self.frontier_size


@dataclass(frozen=True)
class BFSResult:
    """Outcome of one BFS execution.

    ``traversed_edges`` counts *undirected input-graph edges* in the
    traversed component (the Graph500 TEPS numerator): half the sum of the
    visited vertices' degrees in the deduplicated graph.
    """

    parent: np.ndarray
    root: int
    traces: tuple[LevelTrace, ...]
    traversed_edges: int
    wall_time_s: float
    modeled_time_s: float

    # -- aggregate views used by the analysis modules -----------------------------

    @property
    def n_levels(self) -> int:
        """Number of BFS levels executed (including empty final probe)."""
        return len(self.traces)

    @property
    def n_visited(self) -> int:
        """Vertices reached (root included)."""
        return int(np.count_nonzero(np.asarray(self.parent) >= 0))

    def metrics_registry(self) -> MetricsRegistry:
        """This run's traces replayed into a fresh metrics registry.

        The registry carries exactly the ``bfs.*`` series a live
        :class:`~repro.obs.Observability` session would have recorded
        for this run alone — the aggregate views below read from it, so
        a stored :class:`BFSResult` and a live session answer the same
        questions through the same metric names.
        """
        reg = MetricsRegistry()
        for t in self.traces:
            d = t.direction.value
            reg.counter(M_BFS_LEVELS, direction=d).inc()
            reg.counter(M_BFS_EDGES, direction=d, medium="dram").inc(
                t.edges_scanned - t.edges_scanned_nvm
            )
            if t.edges_scanned_nvm:
                reg.counter(M_BFS_EDGES, direction=d, medium="nvm").inc(
                    t.edges_scanned_nvm
                )
            reg.counter(M_BFS_DISCOVERED, direction=d).inc(t.next_size)
            if t.degraded:
                reg.counter(M_BFS_DEGRADED).inc()
            reg.histogram(M_BFS_LEVEL_SECONDS).observe(t.modeled_time_s)
            reg.histogram(M_BFS_FRONTIER).observe(t.frontier_size)
        reg.counter(M_BFS_TRAVERSED).inc(self.traversed_edges)
        return reg

    def edges_by_direction(self) -> dict[Direction, int]:
        """Total scanned edges per direction (Fig. 10's bars)."""
        reg = self.metrics_registry()
        return {
            d: int(
                reg.value(M_BFS_EDGES, direction=d.value, medium="dram")
                + reg.value(M_BFS_EDGES, direction=d.value, medium="nvm")
            )
            for d in Direction
        }

    def levels_by_direction(self) -> dict[Direction, int]:
        """Number of levels executed per direction."""
        reg = self.metrics_registry()
        return {
            d: int(reg.value(M_BFS_LEVELS, direction=d.value))
            for d in Direction
        }

    @property
    def n_degraded_levels(self) -> int:
        """Levels forced to bottom-up by an open device circuit."""
        return int(self.metrics_registry().value(M_BFS_DEGRADED))

    def teps(self, modeled: bool = False) -> float:
        """TEPS of this run (wall-clock by default, modeled on request)."""
        t = self.modeled_time_s if modeled else self.wall_time_s
        if t <= 0:
            return 0.0
        return self.traversed_edges / t

    def direction_schedule(self) -> str:
        """Compact schedule string, e.g. ``'TTBBBTT'`` (§VI-C analysis)."""
        return "".join(
            "T" if t.direction is Direction.TOP_DOWN else "B" for t in self.traces
        )


def record_run_spans(
    obs,
    engine: str,
    root: int,
    t_start: float,
    t_end: float,
    traces: list[LevelTrace],
    level_bounds: list[tuple[float, float]],
) -> None:
    """Synthesize the ``bfs.run`` → ``bfs.phase`` → ``bfs.level`` span
    tree of one finished run from its recorded level boundaries.

    Every engine calls this after its level loop rather than opening
    spans live, keeping the hot loop free of context-manager nesting.
    Phases are maximal runs of same-direction levels — the paper's
    §VI-C direction-switch schedule rendered as a span hierarchy.
    """
    if not obs.enabled or not traces:
        return
    run_span = obs.record_span(
        "bfs.run",
        t_start,
        t_end,
        engine=engine,
        root=int(root),
        levels=len(traces),
    )
    i = 0
    while i < len(traces):
        j = i
        while (
            j + 1 < len(traces)
            and traces[j + 1].direction is traces[i].direction
        ):
            j += 1
        phase = obs.record_span(
            "bfs.phase",
            level_bounds[i][0],
            level_bounds[j][1],
            parent=run_span,
            direction=traces[i].direction.value,
            levels=j - i + 1,
        )
        for k in range(i, j + 1):
            t = traces[k]
            obs.record_span(
                "bfs.level",
                level_bounds[k][0],
                level_bounds[k][1],
                parent=phase,
                level=t.level,
                direction=t.direction.value,
                frontier=t.frontier_size,
                discovered=t.next_size,
                edges_scanned=t.edges_scanned,
                degraded=t.degraded,
            )
        i = j + 1
