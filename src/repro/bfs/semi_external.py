"""Hybrid BFS with the forward graph on semi-external memory (paper §V).

:class:`SemiExternalBFS` is the paper's proposed configuration: the
forward graph's index/value files live on the NVM device and every
top-down level reads them through ≤4 KB chunked requests, while the
backward graph and all BFS status data stay in DRAM.  Optionally the
backward graph is *partially* offloaded too (§VI-E), via the scanners in
:mod:`repro.semiext.cache`.

Cost accounting (each scanned edge is paid exactly once):

* edges whose adjacency came from DRAM — charged by the engine through
  the DRAM cost model (:meth:`_charge_level`, DRAM-resident probes only);
* edges fetched from the device — their CPU share enters the queueing
  model as per-request *think time* (which is also what reproduces the
  paper's Figure 12 queue-length contrast: the faster device drains its
  queue between a worker's reads, ``Q = N − X·Z``), and their service
  time is the device model's;
* edges served by the modeled page cache — charged at DRAM cost inside
  the storage layer (``cache_hit_time_per_byte``), which is what makes
  the warm small-SCALE runs of Figure 9 competitive with DRAM-only.
"""

from __future__ import annotations

from repro.bfs.bottomup import BottomUpScanner
from repro.bfs.hybrid import HybridBFS
from repro.bfs.metrics import Direction
from repro.bfs.policies import DirectionPolicy
from repro.csr.io import ExternalCSR, offload_csr
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.errors import ConfigurationError
from repro.perfmodel.cost import DramCostModel
from repro.semiext.storage import NVMStore

__all__ = ["SemiExternalBFS"]


class SemiExternalBFS(HybridBFS):
    """Hybrid BFS reading the forward graph from simulated NVM.

    Build instances with :meth:`offload`, which writes the forward shards
    into the store (two files per NUMA node: the paper's array/value
    files) and wires clock, iostat and cost accounting together.
    """

    def __init__(
        self,
        forward: ForwardGraph,
        backward: BackwardGraph,
        policy: DirectionPolicy,
        store: NVMStore,
        external_shards: list[ExternalCSR],
        cost_model: DramCostModel | None = None,
        backward_scanners: list[BottomUpScanner] | None = None,
        obs=None,
    ) -> None:
        if len(external_shards) != forward.topology.n_nodes:
            raise ConfigurationError(
                f"need one external shard per NUMA node "
                f"({forward.topology.n_nodes}), got {len(external_shards)}"
            )
        self.store = store
        self._external_shards = external_shards
        self._backward_scanners = backward_scanners
        self._degraded = False
        # The engine and the storage layer must share one clock so DRAM and
        # NVM charges accumulate on the same axis; likewise one
        # observability session (the store's, unless overridden), so
        # bfs.* and nvm.* series land in the same registry.
        super().__init__(
            forward=forward,
            backward=backward,
            policy=policy,
            cost_model=cost_model,
            clock=store.clock,
            obs=obs if obs is not None else store.obs,
        )
        if cost_model is not None:
            # Page-cache hits are DRAM reads: charge them at the cost
            # model's per-byte probe rate inside the storage layer.
            per_edge_s = cost_model.level_time_s(1, 0, 0)
            store.cache_hit_time_per_byte = per_edge_s / 8.0

    @classmethod
    def offload(
        cls,
        forward: ForwardGraph,
        backward: BackwardGraph,
        policy: DirectionPolicy,
        store: NVMStore,
        cost_model: DramCostModel | None = None,
        backward_scanners: list[BottomUpScanner] | None = None,
        prefix: str = "forward",
        obs=None,
        offload_k: int | None = None,
    ) -> "SemiExternalBFS":
        """Offload the forward shards to ``store`` and build the engine.

        This is pipeline Step 2's second half ("offload the constructed
        forward graph to NVM"); the in-DRAM forward shards can be dropped
        by the caller afterwards.

        ``offload_k`` additionally tiers the *backward* graph (§VI-E):
        each shard keeps its first k edges per row in DRAM and serves the
        tail from the same store through a
        :class:`~repro.semiext.tiered.TieredBackwardStore` (mutually
        exclusive with an explicit ``backward_scanners`` list).
        """
        if offload_k is not None:
            if backward_scanners is not None:
                raise ConfigurationError(
                    "pass either offload_k or backward_scanners, not both"
                )
            from repro.semiext.tiered import TieredBackwardStore

            tiered = TieredBackwardStore.build(backward, offload_k, store, obs=obs)
            backward_scanners = tiered.scanners
        external = [
            offload_csr(shard, store, f"{prefix}.node{k}")
            for k, shard in enumerate(forward.shards)
        ]
        return cls(
            forward=forward,
            backward=backward,
            policy=policy,
            store=store,
            external_shards=external,
            cost_model=cost_model,
            backward_scanners=backward_scanners,
            obs=obs,
        )

    # -- engine hooks -------------------------------------------------------------

    def _top_down_shards(self) -> list:
        return list(self._external_shards)

    def _make_scanners(self) -> list[BottomUpScanner]:
        # Called from the base constructor, before our fields exist; the
        # optional partial-offload scanners are swapped in lazily below.
        # The in-DRAM scanners built here stay around as the degraded-
        # mode fallback even when partial offload is configured.
        return super()._make_scanners()

    @property
    def scanners(self) -> list[BottomUpScanner]:
        """Active bottom-up scanners (partial offload when configured)."""
        return self._active_scanners()

    # -- resilience hooks ---------------------------------------------------------

    def _device_health(self) -> float:
        return self.store.health.health_score()

    @property
    def degraded_mode(self) -> bool:
        """Whether the engine has fallen back to bottom-up-only traversal."""
        return self._degraded or self.store.health.circuit_open

    def _effective_direction(self, direction: Direction) -> Direction:
        if self.degraded_mode:
            # An open circuit means every NVM read would raise; the
            # asymmetric layout makes correctness-preserving fallback
            # possible because the *backward* graph is in DRAM — every
            # level (the root expansion included) runs bottom-up there.
            self._degraded = True
            self.store.resilience.degraded_levels += 1
            return Direction.BOTTOM_UP
        return direction

    def _active_scanners(self) -> list[BottomUpScanner]:
        if self.degraded_mode:
            return self._scanners  # in-DRAM scanners, zero NVM reads
        if self._backward_scanners is not None:
            return self._backward_scanners
        return self._scanners

    def _enter_degraded(self) -> bool:
        self._degraded = True
        self.store.resilience.degraded_levels += 1
        return True

    def _think_time_s(self) -> float:
        # CPU a reader thread spends digesting one 4 KB request's edges
        # before issuing the next read; enters the closed queueing model.
        if self.cost_model is None:
            return 0.0
        edges_per_request = self.store.chunk_bytes / 8.0
        return self.cost_model.per_request_think_time_s(edges_per_request)

    def _io_counters(self) -> tuple[int, int, float]:
        st = self.store.iostats
        return st.n_requests, st.total_bytes, st.busy_time_s

    def _charge_level(
        self,
        direction,
        scanned_dram: int,
        scanned_nvm: int,
        frontier_size: int,
        next_size: int,
    ) -> None:
        # NVM-fetched edges were already paid for (device service + think
        # time; cache hits via cache_hit_time_per_byte): charge only the
        # DRAM-resident probes and the queue bookkeeping.
        if self.cost_model is None:
            return
        self.clock.advance(
            self.cost_model.level_time_s(
                edges_scanned=scanned_dram,
                frontier_size=frontier_size,
                next_size=next_size,
            )
        )
