"""BFS status data (the paper's third data structure class, §IV-A).

NETAL's *BFS Status Data* comprises "queues, bitmaps for BFS status
memories, and trees for search results".  :class:`BFSState` bundles exactly
those: the parent tree, the visited bitmap, the frontier in both queue
(vertex array) and bitmap representations, and the per-NUMA-node unvisited
candidate lists the bottom-up direction prunes level by level.

The double frontier representation mirrors the hybrid algorithm's needs:
the top-down step consumes a *queue* (it iterates frontier vertices), the
bottom-up step consumes a *bitmap* (it tests membership per scanned edge).
Conversions happen only when the direction actually switches.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.numa.topology import NumaTopology
from repro.util.bitmap import Bitmap

__all__ = ["BFSState", "UNVISITED"]

UNVISITED = np.int64(-1)
"""Parent-array marker for unreached vertices (Graph500 convention)."""


class BFSState:
    """Mutable per-run search state.

    Parameters
    ----------
    n_vertices:
        Vertex universe size.
    topology:
        NUMA topology; candidate lists are partitioned along its ranges.
    root:
        Search key; immediately marked visited with ``parent[root] = root``.
    """

    def __init__(self, n_vertices: int, topology: NumaTopology, root: int) -> None:
        if not 0 <= root < n_vertices:
            raise ConfigurationError(
                f"root {root} outside [0, {n_vertices})"
            )
        self.n_vertices = int(n_vertices)
        self.topology = topology
        self.root = int(root)

        self.parent = np.full(n_vertices, UNVISITED, dtype=np.int64)
        self.visited = Bitmap(n_vertices)
        self.frontier_queue = np.array([root], dtype=np.int64)
        self.frontier_bitmap: Bitmap | None = None

        self.parent[root] = root
        self.visited.set(root)

        # Per-node unvisited candidates, pruned as vertices are discovered.
        # NETAL partitions "unvisited vertices to search" per NUMA node; a
        # shrinking explicit list keeps the bottom-up scan O(remaining).
        self._candidates: list[np.ndarray] = []
        for part in topology.partitions(n_vertices):
            local = np.arange(part.lo, part.hi, dtype=np.int64)
            self._candidates.append(local[local != root])

    @classmethod
    def restore(
        cls,
        n_vertices: int,
        topology: NumaTopology,
        root: int,
        parent: np.ndarray,
        frontier_queue: np.ndarray,
    ) -> "BFSState":
        """Rebuild mid-run state from a checkpoint's (parent, frontier).

        The visited bitmap is derived (``parent >= 0`` ≡ visited — every
        engine sets both together), and the per-node candidate lists are
        rebuilt as the ascending unvisited vertices of each partition.
        That matches what a live run's lazily-pruned lists would scan:
        pruning only ever removes visited vertices and never reorders, so
        a traversal continued from restored state is bit-identical to one
        that never stopped.
        """
        state = cls(n_vertices, topology, root)
        state.parent = np.asarray(parent, dtype=np.int64).copy()
        state.visited = Bitmap.from_indices(
            n_vertices, np.flatnonzero(state.parent >= 0)
        )
        state.frontier_queue = np.asarray(frontier_queue, dtype=np.int64)
        state.frontier_bitmap = None
        state._candidates = []
        for part in topology.partitions(n_vertices):
            local = np.arange(part.lo, part.hi, dtype=np.int64)
            state._candidates.append(local[state.parent[local] < 0])
        return state

    # -- frontier management ----------------------------------------------------

    @property
    def frontier_size(self) -> int:
        """Vertices in the current frontier."""
        return int(self.frontier_queue.size)

    def promote_next(self, next_queue: np.ndarray) -> None:
        """Install the discovered vertex set as the next level's frontier."""
        self.frontier_queue = np.asarray(next_queue, dtype=np.int64)
        self.frontier_bitmap = None  # invalidated; rebuilt on demand

    def frontier_as_bitmap(self) -> Bitmap:
        """The frontier as a bitmap (built lazily, cached per level)."""
        if self.frontier_bitmap is None:
            self.frontier_bitmap = Bitmap.from_indices(
                self.n_vertices, self.frontier_queue
            )
        return self.frontier_bitmap

    # -- discovery ---------------------------------------------------------------

    def discover(self, vertices: np.ndarray, parents: np.ndarray) -> None:
        """Mark ``vertices`` visited with the given parents.

        Callers guarantee ``vertices`` are currently unvisited and
        duplicate-free (the step kernels enforce first-parent-wins before
        calling in, the vectorized equivalent of NETAL's atomic CAS).
        """
        v = np.asarray(vertices, dtype=np.int64)
        if v.size == 0:
            return
        self.parent[v] = parents
        self.visited.set_many(v)

    def unvisited_candidates(self, node: int) -> np.ndarray:
        """Current unvisited vertices of one NUMA node (pruned, cached).

        Pruning is incremental: each call drops the vertices discovered
        since the last call, so a full BFS scans each vertex's candidacy
        O(levels it remained unvisited) times — the same asymptotics as
        NETAL's per-node candidate queues.
        """
        cand = self._candidates[node]
        if cand.size:
            still = ~self.visited.test_many(cand)
            if not still.all():
                cand = cand[still]
                self._candidates[node] = cand
        return cand

    # -- accounting ----------------------------------------------------------------

    @property
    def n_visited(self) -> int:
        """Vertices discovered so far (root included)."""
        return self.visited.count()

    def status_nbytes(self) -> int:
        """Bytes of live status data (tree + bitmaps + queues + candidates)."""
        total = int(self.parent.nbytes) + self.visited.nbytes()
        total += int(self.frontier_queue.nbytes)
        if self.frontier_bitmap is not None:
            total += self.frontier_bitmap.nbytes()
        total += sum(int(c.nbytes) for c in self._candidates)
        return total

    def __repr__(self) -> str:
        return (
            f"BFSState(n={self.n_vertices}, root={self.root}, "
            f"visited={self.n_visited}, frontier={self.frontier_size})"
        )
