"""Direction-switching policies for hybrid BFS.

The paper's rule (§III-C) switches on *frontier vertex counts* with two
thresholds α and β:

* top-down → bottom-up at level *i* when the frontier grew
  (``n_frontier(i-1) < n_frontier(i)``) **and** ``n_frontier(i) > n_all/α``;
* bottom-up → top-down when the frontier shrank **and**
  ``n_frontier(i) < n_all/β``.

Large α therefore switches to bottom-up *early* (threshold ``n_all/α`` is
tiny) and large β switches back to top-down *late* — the paper's
semi-external tuning pushes both towards "spend as many levels as possible
in bottom-up" because only top-down touches the NVM-resident forward graph
(α = 1e6, β = 1·α for the PCIeFlash scenario versus α = 1e4, β = 10·α for
DRAM-only).

:class:`BeamerPolicy` implements the classic *edge-count* heuristic of
Beamer et al. (SC'12) for comparison, and :class:`FixedPolicy` pins one
direction (the paper's "top-down only" / "bottom-up only" baselines).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.bfs.metrics import Direction
from repro.errors import ConfigurationError

__all__ = [
    "PolicyInputs",
    "DirectionPolicy",
    "AlphaBetaPolicy",
    "BeamerPolicy",
    "FixedPolicy",
    "TieredKPolicy",
]


@dataclass(frozen=True)
class PolicyInputs:
    """Everything a policy may inspect when choosing the next direction.

    Attributes
    ----------
    level:
        Index of the level about to run (0 = root expansion).
    current:
        Direction used by the previous level.
    n_frontier:
        Frontier size entering the level, ``n_frontier(i)``.
    n_frontier_prev:
        Frontier size of the previous level, ``n_frontier(i-1)``.
    n_all:
        Total vertices in the graph.
    frontier_edges:
        Out-edges of the frontier (Beamer's ``m_f``; optional, 0 if the
        engine does not track degree sums).
    unvisited_edges:
        Out-edges of unvisited vertices (Beamer's ``m_u``).
    device_health:
        Health of the NVM device backing the top-down direction, in
        ``[0, 1]`` (see
        :meth:`repro.semiext.faults.DeviceHealthMonitor.health_score`).
        ``1.0`` for DRAM-only engines; ``0.0`` means the circuit breaker
        is open and top-down reads would fail.
    """

    level: int
    current: Direction
    n_frontier: int
    n_frontier_prev: int
    n_all: int
    frontier_edges: int = 0
    unvisited_edges: int = 0
    device_health: float = 1.0


class DirectionPolicy(ABC):
    """Chooses the direction of each BFS level."""

    @abstractmethod
    def decide(self, inputs: PolicyInputs) -> Direction:
        """Return the direction for the level described by ``inputs``."""

    def reset(self) -> None:
        """Hook for stateful policies; called once per BFS run."""


@dataclass
class AlphaBetaPolicy(DirectionPolicy):
    """The paper's frontier-count rule (§III-C).

    Parameters
    ----------
    alpha:
        Top-down → bottom-up threshold divisor; switch when the frontier
        grows beyond ``n_all / alpha``.  The paper sweeps 1e4 … 1e6.
    beta:
        Bottom-up → top-down threshold divisor; switch back when the
        frontier shrinks below ``n_all / beta``.  The paper expresses β as
        a multiple of α (10·α … 0.1·α).

    A degraded device (``inputs.device_health < 1``) scales both divisors
    up by ``1 / health``, pushing the schedule further toward bottom-up —
    the same lever the paper pulls statically when it tunes α from 1e4
    (DRAM) to 1e6 (PCIe flash): the flakier the medium behind top-down,
    the fewer levels should touch it.  With a healthy device the rule is
    exactly the paper's.

    >>> p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
    >>> p.decide(PolicyInputs(2, Direction.TOP_DOWN, 200, 50, 1 << 20))
    <Direction.BOTTOM_UP: 'bottom-up'>
    """

    alpha: float
    beta: float

    _MIN_HEALTH = 1e-6  # keeps the divisors finite when the circuit opens

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError(
                f"alpha/beta must be positive, got alpha={self.alpha} beta={self.beta}"
            )

    def decide(self, inputs: PolicyInputs) -> Direction:
        """Apply the paper's two threshold rules (§III-C), health-scaled."""
        if inputs.level == 0:
            return Direction.TOP_DOWN  # the paper always starts top-down
        health = min(max(inputs.device_health, self._MIN_HEALTH), 1.0)
        alpha = self.alpha / health
        beta = self.beta / health
        growing = inputs.n_frontier_prev < inputs.n_frontier
        shrinking = inputs.n_frontier_prev > inputs.n_frontier
        if (
            inputs.current is Direction.TOP_DOWN
            and growing
            and inputs.n_frontier > inputs.n_all / alpha
        ):
            return Direction.BOTTOM_UP
        if (
            inputs.current is Direction.BOTTOM_UP
            and shrinking
            and inputs.n_frontier < inputs.n_all / beta
        ):
            return Direction.TOP_DOWN
        return inputs.current


@dataclass
class BeamerPolicy(DirectionPolicy):
    """Beamer et al.'s edge-count heuristic (SC'12), for the ablation bench.

    Switches top-down → bottom-up when ``m_f > m_u / alpha`` and back when
    ``n_frontier < n_all / beta``, with the published defaults α=14, β=24.
    """

    alpha: float = 14.0
    beta: float = 24.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError(
                f"alpha/beta must be positive, got alpha={self.alpha} beta={self.beta}"
            )

    def decide(self, inputs: PolicyInputs) -> Direction:
        """Apply Beamer's m_f/m_u and n_f/beta heuristics."""
        if inputs.level == 0:
            return Direction.TOP_DOWN
        if inputs.current is Direction.TOP_DOWN:
            if (
                inputs.unvisited_edges > 0
                and inputs.frontier_edges > inputs.unvisited_edges / self.alpha
            ):
                return Direction.BOTTOM_UP
            return Direction.TOP_DOWN
        if inputs.n_frontier < inputs.n_all / self.beta:
            return Direction.TOP_DOWN
        return Direction.BOTTOM_UP


@dataclass
class FixedPolicy(DirectionPolicy):
    """Always run one direction (the paper's single-direction baselines)."""

    direction: Direction

    def decide(self, inputs: PolicyInputs) -> Direction:
        """Ignore the inputs; always the configured direction."""
        return self.direction


@dataclass(frozen=True)
class TieredKPolicy:
    """Pick the per-vertex DRAM budget k of the tiered backward store.

    Not a :class:`DirectionPolicy` — it decides a *placement*, once per
    scenario, before the traversal starts: which k of
    :class:`~repro.semiext.tiered.TieredBackwardStore` to build.  The
    decision rests on two proofs:

    * **capacity** — the k-truncated CSR must actually fit: the candidate
      is admitted through a :class:`~repro.semiext.hierarchy.MemoryHierarchy`
      placement (:meth:`MemoryHierarchy.fits` for a dry run,
      :meth:`~TieredKPolicy.prove` to reserve it), using the exact byte
      formula of :func:`~repro.semiext.tiered.truncated_nbytes`;
    * **health** — every row of degree > k *can* fall through to the
      device, so the share of such rows is capped at
      ``max_fallthrough_share × device_health``.  A degraded device
      shrinks the cap and pushes k up (more DRAM, fewer device reads) —
      the placement-side analogue of :class:`AlphaBetaPolicy`'s
      health-scaled divisors.

    Among admissible candidates the *smallest* k wins: tiering exists to
    shed DRAM, so save as much as the health cap allows.

    >>> import numpy as np
    >>> from repro.semiext.hierarchy import MemoryHierarchy
    >>> deg = np.array([1, 2, 4, 64])
    >>> TieredKPolicy().pick([deg], MemoryHierarchy(10**6))
    2
    """

    candidates: tuple[int, ...] = (2, 4, 8, 16, 32, 64)
    max_fallthrough_share: float = 0.5

    _MIN_HEALTH = 1e-6  # an open circuit must not divide the cap to zero

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigurationError("TieredKPolicy needs >= 1 candidate k")
        if any(k < 0 for k in self.candidates):
            raise ConfigurationError(
                f"candidate ks must be non-negative: {self.candidates}"
            )
        if list(self.candidates) != sorted(set(self.candidates)):
            raise ConfigurationError(
                f"candidate ks must be strictly ascending: {self.candidates}"
            )
        if not 0.0 < self.max_fallthrough_share <= 1.0:
            raise ConfigurationError(
                f"max_fallthrough_share must be in (0, 1]: "
                f"{self.max_fallthrough_share}"
            )

    def pick(
        self,
        shard_degrees,
        hierarchy,
        device_health: float = 1.0,
    ) -> int | None:
        """Smallest admissible k, or ``None`` when no candidate qualifies.

        ``shard_degrees`` is one int64 degree array per backward shard
        (``[shard.degrees() for shard in backward.shards]``); the byte
        check accounts each shard's row-pointer array separately, exactly
        as :class:`~repro.semiext.tiered.TieredBackwardStore` will build
        them.  Non-mutating: the hierarchy is only queried via ``fits``.
        """
        from repro.semiext.hierarchy import Tier
        from repro.semiext.tiered import truncated_nbytes

        import numpy as np

        degs = [np.asarray(d, dtype=np.int64) for d in shard_degrees]
        n_rows = sum(int(d.size) for d in degs)
        if n_rows == 0:
            return None
        health = min(max(device_health, self._MIN_HEALTH), 1.0)
        cap = self.max_fallthrough_share * health
        for k in self.candidates:
            exposed = sum(int((d > k).sum()) for d in degs)
            if exposed / n_rows > cap:
                continue
            nbytes = sum(truncated_nbytes(d, k) for d in degs)
            if hierarchy.fits(nbytes, Tier.DRAM):
                return int(k)
        return None

    def prove(
        self,
        shard_degrees,
        hierarchy,
        device_health: float = 1.0,
        name: str = "backward.tiered",
    ):
        """Like :meth:`pick`, but reserve the winning placement.

        Returns ``(k, placement)`` with the truncated CSR's bytes reserved
        in DRAM under ``name`` — the placement proof the offload planner
        keeps on its books — or ``None`` when no candidate qualifies.
        """
        from repro.semiext.hierarchy import Tier
        from repro.semiext.tiered import truncated_nbytes

        import numpy as np

        k = self.pick(shard_degrees, hierarchy, device_health)
        if k is None:
            return None
        degs = [np.asarray(d, dtype=np.int64) for d in shard_degrees]
        nbytes = sum(truncated_nbytes(d, k) for d in degs)
        return k, hierarchy.reserve(name, nbytes, Tier.DRAM)
