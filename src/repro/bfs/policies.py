"""Direction-switching policies for hybrid BFS.

The paper's rule (§III-C) switches on *frontier vertex counts* with two
thresholds α and β:

* top-down → bottom-up at level *i* when the frontier grew
  (``n_frontier(i-1) < n_frontier(i)``) **and** ``n_frontier(i) > n_all/α``;
* bottom-up → top-down when the frontier shrank **and**
  ``n_frontier(i) < n_all/β``.

Large α therefore switches to bottom-up *early* (threshold ``n_all/α`` is
tiny) and large β switches back to top-down *late* — the paper's
semi-external tuning pushes both towards "spend as many levels as possible
in bottom-up" because only top-down touches the NVM-resident forward graph
(α = 1e6, β = 1·α for the PCIeFlash scenario versus α = 1e4, β = 10·α for
DRAM-only).

:class:`BeamerPolicy` implements the classic *edge-count* heuristic of
Beamer et al. (SC'12) for comparison, and :class:`FixedPolicy` pins one
direction (the paper's "top-down only" / "bottom-up only" baselines).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.bfs.metrics import Direction
from repro.errors import ConfigurationError

__all__ = [
    "PolicyInputs",
    "DirectionPolicy",
    "AlphaBetaPolicy",
    "BeamerPolicy",
    "FixedPolicy",
]


@dataclass(frozen=True)
class PolicyInputs:
    """Everything a policy may inspect when choosing the next direction.

    Attributes
    ----------
    level:
        Index of the level about to run (0 = root expansion).
    current:
        Direction used by the previous level.
    n_frontier:
        Frontier size entering the level, ``n_frontier(i)``.
    n_frontier_prev:
        Frontier size of the previous level, ``n_frontier(i-1)``.
    n_all:
        Total vertices in the graph.
    frontier_edges:
        Out-edges of the frontier (Beamer's ``m_f``; optional, 0 if the
        engine does not track degree sums).
    unvisited_edges:
        Out-edges of unvisited vertices (Beamer's ``m_u``).
    device_health:
        Health of the NVM device backing the top-down direction, in
        ``[0, 1]`` (see
        :meth:`repro.semiext.faults.DeviceHealthMonitor.health_score`).
        ``1.0`` for DRAM-only engines; ``0.0`` means the circuit breaker
        is open and top-down reads would fail.
    """

    level: int
    current: Direction
    n_frontier: int
    n_frontier_prev: int
    n_all: int
    frontier_edges: int = 0
    unvisited_edges: int = 0
    device_health: float = 1.0


class DirectionPolicy(ABC):
    """Chooses the direction of each BFS level."""

    @abstractmethod
    def decide(self, inputs: PolicyInputs) -> Direction:
        """Return the direction for the level described by ``inputs``."""

    def reset(self) -> None:
        """Hook for stateful policies; called once per BFS run."""


@dataclass
class AlphaBetaPolicy(DirectionPolicy):
    """The paper's frontier-count rule (§III-C).

    Parameters
    ----------
    alpha:
        Top-down → bottom-up threshold divisor; switch when the frontier
        grows beyond ``n_all / alpha``.  The paper sweeps 1e4 … 1e6.
    beta:
        Bottom-up → top-down threshold divisor; switch back when the
        frontier shrinks below ``n_all / beta``.  The paper expresses β as
        a multiple of α (10·α … 0.1·α).

    A degraded device (``inputs.device_health < 1``) scales both divisors
    up by ``1 / health``, pushing the schedule further toward bottom-up —
    the same lever the paper pulls statically when it tunes α from 1e4
    (DRAM) to 1e6 (PCIe flash): the flakier the medium behind top-down,
    the fewer levels should touch it.  With a healthy device the rule is
    exactly the paper's.

    >>> p = AlphaBetaPolicy(alpha=1e4, beta=1e5)
    >>> p.decide(PolicyInputs(2, Direction.TOP_DOWN, 200, 50, 1 << 20))
    <Direction.BOTTOM_UP: 'bottom-up'>
    """

    alpha: float
    beta: float

    _MIN_HEALTH = 1e-6  # keeps the divisors finite when the circuit opens

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError(
                f"alpha/beta must be positive, got alpha={self.alpha} beta={self.beta}"
            )

    def decide(self, inputs: PolicyInputs) -> Direction:
        """Apply the paper's two threshold rules (§III-C), health-scaled."""
        if inputs.level == 0:
            return Direction.TOP_DOWN  # the paper always starts top-down
        health = min(max(inputs.device_health, self._MIN_HEALTH), 1.0)
        alpha = self.alpha / health
        beta = self.beta / health
        growing = inputs.n_frontier_prev < inputs.n_frontier
        shrinking = inputs.n_frontier_prev > inputs.n_frontier
        if (
            inputs.current is Direction.TOP_DOWN
            and growing
            and inputs.n_frontier > inputs.n_all / alpha
        ):
            return Direction.BOTTOM_UP
        if (
            inputs.current is Direction.BOTTOM_UP
            and shrinking
            and inputs.n_frontier < inputs.n_all / beta
        ):
            return Direction.TOP_DOWN
        return inputs.current


@dataclass
class BeamerPolicy(DirectionPolicy):
    """Beamer et al.'s edge-count heuristic (SC'12), for the ablation bench.

    Switches top-down → bottom-up when ``m_f > m_u / alpha`` and back when
    ``n_frontier < n_all / beta``, with the published defaults α=14, β=24.
    """

    alpha: float = 14.0
    beta: float = 24.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError(
                f"alpha/beta must be positive, got alpha={self.alpha} beta={self.beta}"
            )

    def decide(self, inputs: PolicyInputs) -> Direction:
        """Apply Beamer's m_f/m_u and n_f/beta heuristics."""
        if inputs.level == 0:
            return Direction.TOP_DOWN
        if inputs.current is Direction.TOP_DOWN:
            if (
                inputs.unvisited_edges > 0
                and inputs.frontier_edges > inputs.unvisited_edges / self.alpha
            ):
                return Direction.BOTTOM_UP
            return Direction.TOP_DOWN
        if inputs.n_frontier < inputs.n_all / self.beta:
            return Direction.TOP_DOWN
        return Direction.BOTTOM_UP


@dataclass
class FixedPolicy(DirectionPolicy):
    """Always run one direction (the paper's single-direction baselines)."""

    direction: Direction

    def decide(self, inputs: PolicyInputs) -> Direction:
        """Ignore the inputs; always the configured direction."""
        return self.direction
