"""Tiered backward store: first k edges per vertex in DRAM, tail on NVM.

This is the *measured* engine behind the paper's §VI-E estimate (Fig. 14):
"limit the number of edges for a vertex to store on DRAM" to k, and serve
everything past the budget from the device.  Where
:class:`repro.semiext.cache.PrefixOffloadScanner` reproduced the estimate,
:class:`TieredBackwardStore` turns it into a first-class engine tier:

* every backward NUMA shard is split into a DRAM-resident **truncated
  CSR** (the first k adjacency entries of each row, original order
  preserved) and an NVM-resident **tail** written through
  :func:`repro.csr.io.offload_csr`;
* the bottom-up scan falls through DRAM→NVM *per vertex*: a row whose
  truncated prefix already yields a frontier parent never touches the
  device (early exit), and a row of degree ≤ k — complete in DRAM by
  construction — is never even considered for fallthrough;
* every tail fetch is charged to the simulated clock and iostats like any
  other NVM read, and the whole tier is observable through the
  ``offload.*`` metrics and spans of :mod:`repro.obs.schema`.

Because :func:`~repro.semiext.cache.split_prefix` preserves row and
within-row order, prefix-then-tail scanning visits exactly the original
adjacency order — so the BFS tree is bit-identical to the untiered
``semi_external`` engine at **every** k (the ``tiered`` conformance engine
and ``tests/test_offload_store.py`` pin this).

See ``docs/offload.md`` for the walkthrough and the measured
memory-vs-TEPS frontier.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottomup import ScanOutcome
from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR, offload_csr
from repro.csr.partition import BackwardGraph
from repro.errors import ConfigurationError
from repro.obs.schema import (
    M_OFFLOAD_DRAM_BYTES,
    M_OFFLOAD_EDGES,
    M_OFFLOAD_FALLTHROUGH,
    M_OFFLOAD_NVM_BYTES,
    M_OFFLOAD_ROWS,
)
from repro.obs.session import NULL, Observability
from repro.semiext.cache import split_prefix
from repro.semiext.storage import NVMStore
from repro.util.bitmap import Bitmap
from repro.util.gather import concat_ranges, first_true_per_segment

__all__ = ["TieredScanner", "TieredBackwardStore", "truncated_nbytes"]


def truncated_nbytes(degrees: np.ndarray, k: int, itemsize: int = 8) -> int:
    """DRAM bytes of a k-truncated CSR over rows with the given degrees.

    Counts ``min(degree, k)`` value entries per row plus the row-pointer
    array — the exact footprint of the prefix produced by
    :func:`~repro.semiext.cache.split_prefix`, computable without building
    it.  This is what :class:`~repro.bfs.policies.TieredKPolicy` feeds to
    :class:`~repro.semiext.hierarchy.MemoryHierarchy` placement proofs.
    """
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    deg = np.asarray(degrees, dtype=np.int64)
    return int((np.minimum(deg, k).sum() + deg.size + 1) * itemsize)


class TieredScanner:
    """Bottom-up scanner over one tiered backward shard.

    Implements the :class:`~repro.bfs.bottomup.BottomUpScanner` protocol
    with a per-vertex DRAM→NVM fallthrough and exact accounting:

    ``rows_scanned``
        rows this scanner was asked to scan (the fallthrough denominator);
    ``fallthrough_rows``
        rows whose DRAM prefix held no frontier parent *and* whose degree
        exceeds k, so the scan continued into the NVM tail;
    ``scanned_dram`` / ``scanned_nvm``
        exact edge probes by tier (early termination included).

    Rows of degree ≤ k are complete in DRAM, so a prefix miss on them is
    final — they are excluded from fallthrough, which keeps the counters
    hand-computable and the device untouched by rows it cannot help.
    """

    def __init__(
        self,
        shard: CSRGraph,
        k: int,
        store: NVMStore,
        name: str,
        node: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self.k = int(k)
        self.node = int(node)
        self.obs = obs if obs is not None else NULL
        prefix, tail = split_prefix(shard, k)
        self.prefix = prefix
        self.tail: ExternalCSR = offload_csr(tail, store, name)
        self._has_tail = shard.degrees() > self.k
        self._full_nbytes = shard.nbytes
        self.rows_scanned = 0
        self.fallthrough_rows = 0
        self.scanned_dram = 0
        self.scanned_nvm = 0

    # -- capacity accounting ---------------------------------------------------

    @property
    def dram_nbytes(self) -> int:
        """Bytes of the truncated prefix resident in DRAM."""
        return self.prefix.nbytes

    @property
    def nvm_nbytes(self) -> int:
        """Bytes of the tail offloaded to NVM."""
        return self.tail.nbytes

    @property
    def full_nbytes(self) -> int:
        """Bytes of the original, untiered shard."""
        return self._full_nbytes

    # -- scanning --------------------------------------------------------------

    def scan(self, local_rows: np.ndarray, frontier: Bitmap) -> ScanOutcome:
        """Scan the DRAM prefix; fall through to the NVM tail on misses."""
        rows = np.asarray(local_rows, dtype=np.int64)
        parents = np.full(rows.size, -1, dtype=np.int64)
        obs = self.obs
        self.rows_scanned += int(rows.size)
        if obs.enabled and rows.size:
            obs.counter(M_OFFLOAD_ROWS).inc(int(rows.size))

        # Phase 1: DRAM prefix with early termination.
        p_starts, p_counts = self.prefix.row_extents(rows)
        p_neigh = self.prefix.adj[concat_ranges(p_starts, p_counts)]
        scanned_dram = 0
        if p_neigh.size:
            hits = frontier.test_many(p_neigh)
            hit_at, scanned = first_true_per_segment(hits, p_counts)
            scanned_dram = int(scanned.sum())
            found = hit_at >= 0
            parents[found] = p_neigh[hit_at[found]]
        else:
            found = np.zeros(rows.size, dtype=bool)
        self.scanned_dram += scanned_dram
        if obs.enabled and scanned_dram:
            obs.counter(M_OFFLOAD_EDGES, tier="dram").inc(scanned_dram)

        # Phase 2: only rows that both missed in DRAM *and* have a tail
        # (degree > k) fall through to the device.
        fall = np.flatnonzero(~found & self._has_tail[rows])
        scanned_nvm = 0
        if fall.size:
            self.fallthrough_rows += int(fall.size)
            if obs.enabled:
                with obs.span(
                    "offload.fallthrough", node=self.node, rows=int(fall.size)
                ) as sp:
                    scanned_nvm = self._scan_tail(rows, fall, frontier, parents)
                    sp.set(edges=scanned_nvm)
                obs.counter(M_OFFLOAD_FALLTHROUGH).inc(int(fall.size))
                if scanned_nvm:
                    obs.counter(M_OFFLOAD_EDGES, tier="nvm").inc(scanned_nvm)
            else:
                scanned_nvm = self._scan_tail(rows, fall, frontier, parents)
        self.scanned_nvm += scanned_nvm
        return ScanOutcome(
            parents=parents, scanned_dram=scanned_dram, scanned_nvm=scanned_nvm
        )

    def _scan_tail(
        self,
        rows: np.ndarray,
        fall: np.ndarray,
        frontier: Bitmap,
        parents: np.ndarray,
    ) -> int:
        """Fetch the NVM tails of ``rows[fall]`` (charged) and scan them."""
        t_neigh, t_counts = self.tail.gather_rows(rows[fall])
        if not t_neigh.size:
            return 0
        hits = frontier.test_many(t_neigh)
        hit_at, scanned = first_true_per_segment(hits, t_counts)
        t_found = hit_at >= 0
        parents[fall[t_found]] = t_neigh[hit_at[t_found]]
        return int(scanned.sum())


class TieredBackwardStore:
    """All NUMA shards of the backward graph, tiered at a per-row budget k.

    Build one with :meth:`build` and hand its :attr:`scanners` to
    :meth:`repro.bfs.semi_external.SemiExternalBFS.offload` (or pass
    ``offload_k=`` there and let it build the store for you).  The store
    aggregates the per-shard capacity and fallthrough accounting and
    publishes the ``offload.dram_resident_bytes`` / ``offload.nvm_tail_bytes``
    gauges at build time.
    """

    def __init__(self, scanners: list[TieredScanner], k: int) -> None:
        if not scanners:
            raise ConfigurationError("TieredBackwardStore needs >= 1 shard")
        self.k = int(k)
        self.scanners = scanners

    @classmethod
    def build(
        cls,
        backward: BackwardGraph,
        k: int,
        store: NVMStore,
        name: str = "tiered",
        obs: Observability | None = None,
    ) -> "TieredBackwardStore":
        """Split every backward shard at k and offload the tails to ``store``.

        Tail files are named ``{name}.k{k}.node{i}.{index,value}`` inside the
        store, so several stores (different k) can share a directory tree as
        long as each gets its own :class:`NVMStore`, and several k can share
        one store as long as ``name`` or k differs.
        """
        obs = obs if obs is not None else store.obs
        with obs.span("offload.split", k=int(k), shards=len(backward.shards)):
            scanners = [
                TieredScanner(
                    shard,
                    k,
                    store,
                    f"{name}.k{int(k)}.node{i}",
                    node=i,
                    obs=obs,
                )
                for i, shard in enumerate(backward.shards)
            ]
        tiered = cls(scanners, k)
        if obs.enabled:
            obs.gauge(M_OFFLOAD_DRAM_BYTES).set(tiered.dram_nbytes)
            obs.gauge(M_OFFLOAD_NVM_BYTES).set(tiered.nvm_nbytes)
            # Pre-register the whole family so a run that never falls
            # through still exports zeroed series (and the fallthrough
            # *absence* is visible, not just unrecorded).
            obs.counter(M_OFFLOAD_ROWS).inc(0)
            obs.counter(M_OFFLOAD_FALLTHROUGH).inc(0)
            obs.counter(M_OFFLOAD_EDGES, tier="dram").inc(0)
            obs.counter(M_OFFLOAD_EDGES, tier="nvm").inc(0)
        return tiered

    # -- capacity accounting ---------------------------------------------------

    @property
    def dram_nbytes(self) -> int:
        """DRAM-resident bytes (all truncated prefixes)."""
        return sum(s.dram_nbytes for s in self.scanners)

    @property
    def nvm_nbytes(self) -> int:
        """NVM-resident bytes (all tails)."""
        return sum(s.nvm_nbytes for s in self.scanners)

    @property
    def full_nbytes(self) -> int:
        """Bytes of the original, untiered backward graph."""
        return sum(s.full_nbytes for s in self.scanners)

    @property
    def dram_reduction(self) -> float:
        """Fraction of the backward graph's bytes moved off DRAM."""
        full = self.full_nbytes
        if full == 0:
            return 0.0
        return 1.0 - self.dram_nbytes / full

    # -- fallthrough accounting ------------------------------------------------

    @property
    def rows_scanned(self) -> int:
        """Rows scanned through the store across all shards so far."""
        return sum(s.rows_scanned for s in self.scanners)

    @property
    def fallthrough_rows(self) -> int:
        """Rows whose scan fell through to an NVM tail so far."""
        return sum(s.fallthrough_rows for s in self.scanners)

    @property
    def scanned_dram(self) -> int:
        """Edge probes answered by the DRAM prefixes so far."""
        return sum(s.scanned_dram for s in self.scanners)

    @property
    def scanned_nvm(self) -> int:
        """Edge probes answered by the NVM tails so far."""
        return sum(s.scanned_nvm for s in self.scanners)

    def __repr__(self) -> str:
        return (
            f"TieredBackwardStore(k={self.k}, shards={len(self.scanners)}, "
            f"dram={self.dram_nbytes}B, nvm={self.nvm_nbytes}B)"
        )
