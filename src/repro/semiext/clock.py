"""Simulated time.

All modeled costs (DRAM traversal work, NVM request service) advance one
:class:`SimulatedClock`.  The BFS engines are written against the tiny
``now()``/``advance()`` interface so the same engine code produces
wall-clock TEPS (with a no-op clock) or modeled TEPS (with this one).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds, float64).

    >>> c = SimulatedClock()
    >>> c.advance(1.5); c.advance(0.25)
    >>> c.now()
    1.75
    """

    __slots__ = ("_t",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock cannot start negative: {start}")
        self._t = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._t

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (must be ≥ 0); returns the new time."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance clock by {seconds} s")
        self._t += float(seconds)
        return self._t

    def reset(self) -> None:
        """Return to t = 0."""
        self._t = 0.0

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._t:.6f}s)"
