"""File-backed arrays read through a modeled NVM device.

This is the reproduction's "semi-external memory": a :class:`NVMStore`
owns a directory of binary array files (the paper's *array file* and
*value file*, §V-B1) plus one :class:`~repro.semiext.device.DeviceModel`,
one :class:`~repro.semiext.clock.SimulatedClock` and one
:class:`~repro.semiext.iostats.IoStats`.

Every read of an :class:`ExternalArray` does two things:

1. **really reads the bytes** through a read-only ``numpy.memmap`` (so the
   data path, alignment and request boundaries are genuine), and
2. **charges the device model** with the exact request stream a 4 KB-chunked
   ``read(2)`` loop would issue (paper §V-C), advancing the simulated clock
   and feeding the iostat accounting.

The BFS engines therefore need no special cases: an in-DRAM ``ndarray`` and
an ``ExternalArray`` expose the same gather operations, differing only in
what they cost.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import (
    ChecksumError,
    ConfigurationError,
    DeviceFailedError,
    StorageError,
    TransientIOError,
    TruncatedFileError,
)
from repro.semiext.clock import SimulatedClock
from repro.semiext.device import BatchResult, DeviceModel
from repro.semiext.faults import (
    FaultInjector,
    FaultPlan,
    DeviceHealthMonitor,
    ResilienceStats,
    RetryPolicy,
)
from repro.obs.schema import (
    M_CACHE_HIT_BYTES,
    M_CACHE_MISS_BYTES,
    M_CACHE_RESIDENT,
    M_HEALTH_CIRCUIT,
    M_HEALTH_SCORE,
    M_NVM_SYSCALLS,
    M_RES_ATTEMPTS,
    M_RES_BACKOFF_SECONDS,
    M_RES_CHECKSUM,
    M_RES_GC_PAUSES,
    M_RES_GC_SECONDS,
    M_RES_HARD_FAILURES,
    M_RES_REFUSED,
    M_RES_RETRIES,
    M_RES_TIMEOUTS,
    M_RES_TORN,
    M_RES_TRANSIENT,
)
from repro.obs.session import NULL, Observability
from repro.semiext.iostats import IoStats
from repro.util.chunking import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_MAX_MERGED_BYTES,
    merge_extents,
    plan_chunks,
)
from repro.util.gather import concat_ranges

__all__ = ["NVMStore", "ExternalArray", "DeferredCharge"]


class NVMStore:
    """A directory of array files behind one simulated NVM device.

    Parameters
    ----------
    root:
        Directory for the backing files (created if missing).
    device:
        Performance model charged for every read.
    clock:
        Simulated clock advanced by every read (shared with the BFS cost
        model so device time and CPU time add up on one axis).
    concurrency:
        Number of synchronous reader threads assumed by the queueing model
        (the paper: 48).
    chunk_bytes:
        Maximum ``read(2)`` size (the paper: 4 KB); also the page size of
        the modeled page cache.
    max_request_bytes:
        Largest post-merge device request the modeled block layer emits
        (``iostat`` sees these, not the 4 KB syscalls).
    page_cache_bytes:
        Capacity of the modeled OS page cache (0 = none).  The cache
        fills once and never evicts — adequate for BFS, whose NVM reads
        have little short-term reuse — and is what reproduces the paper's
        Figure 9: when the spare DRAM exceeds the forward graph (their
        SCALE 26 on the 64 GB machines), repeat reads become cache hits
        and DRAM+PCIeFlash performs like DRAM-only.
    io_mode:
        ``"sync"`` (default) models the paper's implementation: one
        outstanding ``read(2)`` per worker thread, throughput capped by
        the closed system.  ``"async"`` models the §VI-D suggestion of
        aggregating small I/O with ``libaio``: the level's whole request
        batch is submitted at device queue depth, CPU think time overlaps
        I/O, and throughput reaches the device's saturation rate.
    fault_plan:
        Optional seeded :class:`~repro.semiext.faults.FaultPlan`; when it
        injects anything, reads go through the resilient path (bounded
        retries, checksum verification, circuit breaker).
    retry:
        Retry/backoff/timeout policy of the resilient path (defaults to
        :class:`~repro.semiext.faults.RetryPolicy`'s defaults).
    verify_checksums:
        Verify per-chunk CRC32 checksums on every device read.  Defaults
        to on when a fault plan is active, off otherwise (the fault-free
        fast path is unchanged).
    health:
        Device health monitor / circuit breaker; a default-configured
        :class:`~repro.semiext.faults.DeviceHealthMonitor` when omitted.
    obs:
        Observability session recording the store's activity: the
        ``nvm.*`` / ``cache.*`` / ``res.*`` / ``health.*`` metrics and
        the ``nvm.charge`` / ``nvm.backoff`` spans documented in
        ``docs/observability.md``.  Defaults to the disabled
        :data:`~repro.obs.NULL` session (zero overhead).
    """

    def __init__(
        self,
        root: str | Path,
        device: DeviceModel,
        clock: SimulatedClock | None = None,
        concurrency: int = 48,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        max_request_bytes: int = DEFAULT_MAX_MERGED_BYTES,
        page_cache_bytes: int = 0,
        io_mode: str = "sync",
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        verify_checksums: bool | None = None,
        health: DeviceHealthMonitor | None = None,
        obs: Observability | None = None,
    ) -> None:
        if io_mode not in ("sync", "async"):
            raise ConfigurationError(
                f"io_mode must be 'sync' or 'async', got {io_mode!r}"
            )
        if concurrency <= 0:
            raise ConfigurationError(f"concurrency must be positive: {concurrency}")
        if chunk_bytes <= 0:
            raise ConfigurationError(f"chunk_bytes must be positive: {chunk_bytes}")
        if max_request_bytes < chunk_bytes:
            raise ConfigurationError(
                f"max_request_bytes ({max_request_bytes}) must be >= "
                f"chunk_bytes ({chunk_bytes})"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.device = device
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = obs if obs is not None else NULL
        self.obs.bind_clock(self.clock)
        self.iostats = IoStats(
            device_name=device.name,
            obs=self.obs if self.obs.enabled else None,
        )
        if page_cache_bytes < 0:
            raise ConfigurationError(
                f"page_cache_bytes must be >= 0: {page_cache_bytes}"
            )
        self.concurrency = int(concurrency)
        self.chunk_bytes = int(chunk_bytes)
        self.max_request_bytes = int(max_request_bytes)
        self.page_cache_bytes = int(page_cache_bytes)
        self.io_mode = io_mode
        self.n_syscalls = 0
        self.cache_hit_bytes = 0
        self.cache_miss_bytes = 0
        self.cache_hit_time_per_byte = 0.0
        """Seconds charged per page-cache-hit byte (DRAM read cost).

        Zero by default; the semi-external engine sets it from its DRAM
        cost model so cached reads cost memory speed, not nothing.
        """
        self._resident: dict[str, np.ndarray] = {}  # file_key -> page bools
        self._resident_bytes = 0
        self._arrays: dict[str, "ExternalArray"] = {}
        self.fault_plan = fault_plan
        self.injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and fault_plan.active
            else None
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.verify_checksums = (
            self.injector is not None
            if verify_checksums is None
            else bool(verify_checksums)
        )
        self.health = health if health is not None else DeviceHealthMonitor()
        self.resilience = ResilienceStats()
        self._checksums: dict[str, np.ndarray] = {}  # file_key -> page CRC32s
        # Charging mutates the clock, the iostat meters and the page
        # cache; a lock keeps concurrent shard workers (see
        # repro.bfs.parallel) from corrupting them.
        self._charge_lock = threading.Lock()

    def put_array(self, name: str, array: np.ndarray) -> "ExternalArray":
        """Offload ``array`` to the store; returns its external handle.

        The write itself is not charged to the device model: the paper
        measures BFS-phase I/O only (graph construction I/O is excluded
        from the TEPS timing by the Graph500 rules).
        """
        if "/" in name or name.startswith("."):
            raise StorageError(f"invalid array name: {name!r}")
        if name in self._arrays:
            raise StorageError(f"array {name!r} already exists in store")
        arr = np.ascontiguousarray(array)
        path = self.root / f"{name}.bin"
        arr.tofile(path)
        ext = ExternalArray(self, name, path, arr.dtype, arr.shape)
        self._arrays[name] = ext
        if self.verify_checksums:
            self._checksums[name] = _page_checksums(
                arr.reshape(-1).view(np.uint8), self.chunk_bytes
            )
        return ext

    def get_array(self, name: str) -> "ExternalArray":
        """Look up a previously offloaded array."""
        try:
            return self._arrays[name]
        except KeyError:
            raise StorageError(f"no array named {name!r} in store") from None

    def drop_array(self, name: str) -> None:
        """Remove an array and delete its backing file."""
        ext = self.get_array(name)
        ext.close()
        ext.path.unlink(missing_ok=True)
        del self._arrays[name]
        self._checksums.pop(name, None)

    @property
    def nbytes(self) -> int:
        """Total bytes currently resident on the device."""
        return sum(a.nbytes for a in self._arrays.values())

    def charge(
        self,
        offsets: np.ndarray,
        lengths: np.ndarray,
        think_time_s: float = 0.0,
        file_key: str = "",
    ) -> float:
        """Charge the device for reading the given byte extents.

        Three layers, as on a real kernel: the extents are split into
        ≤``chunk_bytes`` ``read(2)`` calls (counted in :attr:`n_syscalls`),
        widened to pages and deduplicated within the batch, filtered
        against the persistent page cache (``page_cache_bytes``), and the
        remaining misses merged into device requests of
        ≤``max_request_bytes`` (what iostat sees).  The merged stream is
        serviced through the device model, advancing the clock and
        recording iostat data.  Returns the modeled elapsed seconds.

        Thread-safe: concurrent shard workers serialize on an internal
        lock (order-dependent float accumulation aside, totals are
        independent of the interleaving).
        """
        with self._charge_lock:
            return self._charge_locked(offsets, lengths, think_time_s, file_key)

    def _charge_locked(
        self,
        offsets: np.ndarray,
        lengths: np.ndarray,
        think_time_s: float,
        file_key: str,
    ) -> float:
        syscalls = plan_chunks(offsets, lengths, self.chunk_bytes)
        self.n_syscalls += syscalls.n_requests
        obs = self.obs
        obs.counter(M_NVM_SYSCALLS, device=self.device.name).inc(
            syscalls.n_requests
        )
        plan = merge_extents(
            offsets,
            lengths,
            page_bytes=self.chunk_bytes,
            max_request_bytes=self.max_request_bytes,
        )
        if plan.n_requests == 0:
            return 0.0
        if self.page_cache_bytes > 0:
            # Useful-byte density of this batch's pages: hits are charged
            # for the adjacency actually consumed, not the page padding.
            requested = int(np.asarray(lengths, dtype=np.int64).sum())
            density = min(1.0, requested / plan.total_bytes)
            plan = self._filter_cached(plan, file_key, density)
            if plan.n_requests == 0:
                return 0.0
        with obs.span(
            "nvm.charge",
            device=self.device.name,
            file_key=file_key,
            requests=plan.n_requests,
            bytes=plan.total_bytes,
        ):
            return self._service_resilient(plan, think_time_s, file_key)

    def charge_write(self, nbytes: int, file_key: str = "") -> float:
        """Charge the device for a sequential write of ``nbytes``.

        Checkpoint persistence is BFS-phase I/O — unlike graph
        construction (:meth:`put_array`, uncharged by the Graph500
        rules), it must cost simulated time on the same axis as the
        traversal's reads.  The device model only parameterizes reads, so
        a write is modeled as the same sequential stream: one request
        per ``max_request_bytes`` window, each paying the device latency,
        plus the transfer at the device's bandwidth.  The clock advances;
        the read-side iostat meters are untouched (``iostat`` splits
        read/write columns, and the paper's figures read the read side).
        Returns the modeled elapsed seconds.
        """
        if nbytes < 0:
            raise StorageError(f"negative write size: {nbytes}")
        if nbytes == 0:
            return 0.0
        n_requests = -(-int(nbytes) // self.max_request_bytes)
        elapsed = (
            n_requests * self.device.read_latency_s
            + int(nbytes) / self.device.read_bandwidth_bps
        )
        with self._charge_lock:
            self.clock.advance(elapsed)
        return elapsed

    def _service_once(self, plan, think_time_s: float) -> BatchResult:
        """Solve one batch submission through the device model (no side
        effects on clock or iostats)."""
        if self.io_mode == "async":
            # libaio-style aggregation (§VI-D): many small reads are
            # coalesced into scatter-gather submissions of
            # ``max_request_bytes``, queued at device depth with CPU
            # overlapped — turning the IOPS-bound small-request stream
            # into a bandwidth-bound large-request one.
            agg = self.max_request_bytes
            n_sub = max(1, -(-plan.total_bytes // agg))
            x = self.device.saturation_iops(plan.total_bytes / n_sub)
            return BatchResult(
                elapsed_s=n_sub / x,
                mean_queue=float(self.device.channels),
                throughput_iops=x,
            )
        return self.device.submit(
            n_requests=plan.n_requests,
            total_bytes=plan.total_bytes,
            concurrency=self.concurrency,
            think_time_s=think_time_s,
        )

    def _service_resilient(self, plan, think_time_s: float, file_key: str) -> float:
        """Service a merged request batch, absorbing injected faults.

        Each *attempt* charges the device exactly once — full service
        time plus any GC stall enters the clock and the iostat busy/
        request accounting, because the device really did the work before
        erroring.  Backoff waits between attempts advance the clock only
        (the host is waiting; the device is idle).  Raises
        :class:`~repro.errors.DeviceFailedError` when the device is hard-
        failed or the circuit breaker is open,
        :class:`~repro.errors.TransientIOError` /
        :class:`~repro.errors.ChecksumError` when the retry budget is
        exhausted.
        """
        injector = self.injector
        if injector is None and not self.verify_checksums:
            # Fault-free fast path: identical to the pre-resilience store.
            result = self._service_once(plan, think_time_s)
            t0 = self.clock.now()
            self.clock.advance(result.elapsed_s)
            self.iostats.record_batch(
                t_start_s=t0,
                duration_s=result.elapsed_s,
                request_sizes=plan.sizes,
                mean_queue=result.mean_queue,
            )
            return result.elapsed_s

        retry = self.retry
        res = self.resilience
        obs = self.obs
        dev = self.device.name
        t_begin = self.clock.now()
        attempt = 0
        while True:
            now = self.clock.now()
            if self.health.circuit_open:
                res.n_refused_reads += 1
                obs.counter(M_RES_REFUSED, device=dev).inc()
                raise DeviceFailedError(
                    f"device {self.device.name!r}: circuit breaker open "
                    f"at t={now:.6f}s; read of {file_key!r} refused"
                )
            if injector is not None and injector.hard_failed(now):
                res.n_hard_failures += 1
                obs.counter(M_RES_HARD_FAILURES, device=dev).inc()
                self.health.record_hard_failure(now)
                self._record_health(obs, dev)
                raise DeviceFailedError(
                    f"device {self.device.name!r} failed hard at "
                    f"t={now:.6f}s (fail_at_s="
                    f"{injector.plan.fail_at_s}); read of {file_key!r} lost"
                )
            attempt += 1
            res.n_attempts += 1
            obs.counter(M_RES_ATTEMPTS, device=dev).inc()
            outcome = injector.draw() if injector is not None else None
            stall_s = outcome.gc_pause_s if outcome is not None else 0.0
            if stall_s > 0.0:
                res.n_gc_pauses += 1
                res.gc_pause_time_s += stall_s
                obs.counter(M_RES_GC_PAUSES, device=dev).inc()
                obs.counter(M_RES_GC_SECONDS, device=dev).inc(stall_s)
            result = self._service_once(plan, think_time_s)
            attempt_s = result.elapsed_s + stall_s
            # The device is charged once per attempt: GC stall included
            # in busy time, exactly as iostat would observe the stall.
            t0 = self.clock.now()
            self.clock.advance(attempt_s)
            self.iostats.record_batch(
                t_start_s=t0,
                duration_s=attempt_s,
                request_sizes=plan.sizes,
                mean_queue=result.mean_queue,
            )
            error: str | None = None
            if outcome is not None and outcome.transient:
                res.n_transient_errors += 1
                obs.counter(M_RES_TRANSIENT, device=dev).inc()
                error = "transient read error"
            elif retry.timeout_s is not None and attempt_s > retry.timeout_s:
                res.n_timeouts += 1
                obs.counter(M_RES_TIMEOUTS, device=dev).inc()
                error = (
                    f"request timeout ({attempt_s:.6f}s > "
                    f"{retry.timeout_s:.6f}s)"
                )
            elif outcome is not None and outcome.torn:
                res.n_torn_reads += 1
                res.n_checksum_failures += 1
                obs.counter(M_RES_TORN, device=dev).inc()
                obs.counter(M_RES_CHECKSUM, device=dev).inc()
                error = "torn read (checksum mismatch)"
            elif self.verify_checksums and not self._verify_pages(file_key, plan):
                res.n_checksum_failures += 1
                obs.counter(M_RES_CHECKSUM, device=dev).inc()
                error = "persistent checksum mismatch"
            if error is None:
                self.health.record_success(self.clock.now())
                self._record_health(obs, dev)
                return self.clock.now() - t_begin
            self.health.record_error(self.clock.now())
            self._record_health(obs, dev)
            if attempt > retry.max_retries:
                message = (
                    f"read of {file_key!r} on {self.device.name!r} failed "
                    f"after {attempt} attempts: {error}"
                )
                if error == "persistent checksum mismatch":
                    # Every attempt re-read the same bad bytes: the
                    # backing file is corrupt, not the transfer.
                    raise ChecksumError(message)
                raise TransientIOError(message)
            wait = retry.backoff_s(attempt)
            with obs.span(
                "nvm.backoff", device=dev, attempt=attempt, wait_s=wait
            ):
                self.clock.advance(wait)
            res.n_retries += 1
            res.backoff_time_s += wait
            obs.counter(M_RES_RETRIES, device=dev).inc()
            obs.counter(M_RES_BACKOFF_SECONDS, device=dev).inc(wait)

    def _record_health(self, obs: Observability, dev: str) -> None:
        """Mirror the health monitor's state into the registry gauges."""
        obs.gauge(M_HEALTH_SCORE, device=dev).set(self.health.health_score())
        obs.gauge(M_HEALTH_CIRCUIT, device=dev).set(
            1.0 if self.health.circuit_open else 0.0
        )

    def _verify_pages(self, file_key: str, plan) -> bool:
        """Recompute CRC32s of the pages a device batch touched.

        Returns ``True`` when every touched page matches the checksum
        recorded at :meth:`put_array` time (or when no checksums exist
        for this key — raw ``charge`` calls and trace replays have no
        backing data to verify).
        """
        sums = self._checksums.get(file_key)
        if sums is None or sums.size == 0:
            return True
        array = self._arrays.get(file_key)
        if array is None or array._mm is None or array.size == 0:
            return True
        data = array._memmap().reshape(-1).view(np.uint8)
        pb = self.chunk_bytes
        first = plan.offsets // pb
        count = (plan.offsets + plan.sizes + pb - 1) // pb - first
        pages = np.unique(concat_ranges(first, count))
        pages = pages[pages < sums.size]
        for p in pages:
            lo = int(p) * pb
            hi = min(lo + pb, data.size)
            if zlib.crc32(data[lo:hi].tobytes()) != int(sums[p]):
                return False
        return True

    def checksum_array(self, name: str) -> np.ndarray:
        """(Re)compute and install the per-chunk checksums of an array.

        Returns the CRC32 array (one ``uint32`` per ``chunk_bytes``
        page).  Called automatically by :meth:`put_array` when
        ``verify_checksums`` is on; call it directly to protect arrays
        offloaded before verification was enabled.
        """
        ext = self.get_array(name)
        data = ext.to_ndarray().reshape(-1).view(np.uint8)
        sums = _page_checksums(data, self.chunk_bytes)
        self._checksums[name] = sums
        return sums

    def _filter_cached(self, plan, file_key: str, density: float = 1.0):
        """Split the page-aligned request stream against the page cache.

        Pages already resident cost DRAM time for their useful bytes
        (``density`` × page, at ``cache_hit_time_per_byte``); missing
        pages are charged to the device and — while capacity remains —
        inserted (fill-once, no eviction).
        """
        pb = self.chunk_bytes
        page_starts = (plan.offsets // pb).astype(np.int64)
        page_counts = (plan.sizes // pb).astype(np.int64)
        pages = concat_ranges(page_starts, page_counts)
        max_page = int(pages.max()) + 1
        resident = self._resident.get(file_key)
        if resident is None or resident.size < max_page:
            grown = np.zeros(max_page, dtype=bool)
            if resident is not None:
                grown[: resident.size] = resident
            self._resident[file_key] = resident = grown
        hit = resident[pages]
        n_hit_bytes = int(hit.sum()) * pb
        self.cache_hit_bytes += n_hit_bytes
        obs = self.obs
        dev = self.device.name
        obs.counter(M_CACHE_HIT_BYTES, device=dev).inc(n_hit_bytes)
        if n_hit_bytes and self.cache_hit_time_per_byte > 0.0:
            # Cached pages are read from DRAM: charge memory-speed time
            # for the useful fraction of the hit pages.
            self.clock.advance(
                n_hit_bytes * density * self.cache_hit_time_per_byte
            )
        misses = pages[~hit]
        n_miss_bytes = int(misses.size) * pb
        self.cache_miss_bytes += n_miss_bytes
        obs.counter(M_CACHE_MISS_BYTES, device=dev).inc(n_miss_bytes)
        if misses.size:
            # Admit misses while capacity remains (fill-once policy).
            room = (self.page_cache_bytes - self._resident_bytes) // pb
            if room > 0:
                admit = misses[: int(room)]
                resident[admit] = True
                self._resident_bytes += int(admit.size) * pb
                obs.event(
                    "cache.fill",
                    device=dev,
                    file_key=file_key,
                    admitted_bytes=int(admit.size) * pb,
                    resident_bytes=self._resident_bytes,
                )
        obs.gauge(M_CACHE_RESIDENT, device=dev).set(self._resident_bytes)
        if misses.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return type(plan)(empty, empty.copy())
        # Re-merge contiguous miss pages into device requests.
        return merge_extents(
            misses * pb,
            np.full(misses.size, pb, dtype=np.int64),
            page_bytes=pb,
            max_request_bytes=self.max_request_bytes,
        )

    @property
    def cache_hit_ratio(self) -> float:
        """Byte-weighted page-cache hit ratio since construction."""
        total = self.cache_hit_bytes + self.cache_miss_bytes
        if total == 0:
            return 0.0
        return self.cache_hit_bytes / total

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def reset_faults(self) -> None:
        """Reset injector draws, health history and resilience counters.

        The fault *plan* stays attached; use this between experiment
        repetitions that must observe the identical fault sequence.
        """
        if self.fault_plan is not None and self.fault_plan.active:
            self.injector = FaultInjector(self.fault_plan)
        self.health.reset()
        self.resilience = ResilienceStats()

    def __repr__(self) -> str:
        return (
            f"NVMStore(root={str(self.root)!r}, device={self.device.name!r}, "
            f"arrays={len(self._arrays)}, nbytes={self.nbytes})"
        )


def _page_checksums(data: np.ndarray, page_bytes: int) -> np.ndarray:
    """CRC32 per ``page_bytes`` page of a flat ``uint8`` array."""
    n_pages = -(-data.size // page_bytes) if data.size else 0
    sums = np.empty(n_pages, dtype=np.uint32)
    for p in range(n_pages):
        lo = p * page_bytes
        hi = min(lo + page_bytes, data.size)
        sums[p] = zlib.crc32(data[lo:hi].tobytes())
    return sums


@dataclass(frozen=True)
class DeferredCharge:
    """A read's device charge, detached from its data transfer.

    Parallel shard workers read through the memmap concurrently (safe)
    but must not meter the device concurrently if deterministic clock
    totals are wanted; the deferred form lets the engine *apply* all
    charges serially in shard order during its commit phase.
    """

    array: "ExternalArray"
    offsets: np.ndarray
    lengths: np.ndarray

    def apply(self, think_time_s: float = 0.0) -> float:
        """Meter the device now; returns modeled elapsed seconds."""
        return self.array.store.charge(
            self.offsets,
            self.lengths,
            think_time_s,
            file_key=self.array.name,
        )


class ExternalArray:
    """A 1-D (or flattenable) array resident on simulated NVM.

    Reads go through a read-only memmap; every read API charges the owning
    store's device model.  Handles are created by
    :meth:`NVMStore.put_array`, never directly.
    """

    def __init__(
        self,
        store: NVMStore,
        name: str,
        path: Path,
        dtype: np.dtype,
        shape: tuple[int, ...],
    ) -> None:
        if len(shape) != 1:
            raise StorageError(
                f"ExternalArray supports 1-D arrays, got shape {shape}"
            )
        self.store = store
        self.name = name
        self.path = path
        self.dtype = np.dtype(dtype)
        self.shape = shape
        # mmap cannot map an empty file; an empty array needs no backing view.
        self._mm: np.ndarray | None
        if shape[0] == 0:
            self._mm = np.empty(0, dtype=self.dtype)
        else:
            self._mm = np.memmap(path, dtype=self.dtype, mode="r", shape=shape)

    # -- metadata --------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.shape[0])

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total backing-file size in bytes."""
        return self.size * self.itemsize

    def _memmap(self) -> np.ndarray:
        if self._mm is None:
            raise StorageError(f"array {self.name!r} is closed")
        return self._mm

    def reopen(self) -> None:
        """Validate the backing file and (re)establish the memmap.

        The public recovery path after anything touched the file behind
        the mapping's back: checks the file exists and still holds
        exactly ``nbytes`` before mapping, so truncation surfaces as a
        typed :class:`~repro.errors.TruncatedFileError` instead of a
        later memmap ``ValueError`` (or, worse, silent garbage).  When
        the owning store verifies checksums, the file content is
        re-verified against the recorded CRCs too.  Idempotent; also
        reopens a previously :meth:`close`-d handle.
        """
        if self.size == 0:
            self._mm = np.empty(0, dtype=self.dtype)
            return
        if not self.path.exists():
            raise TruncatedFileError(
                f"array {self.name!r}: backing file {self.path} is missing"
            )
        actual = self.path.stat().st_size
        if actual != self.nbytes:
            raise TruncatedFileError(
                f"array {self.name!r}: backing file {self.path} holds "
                f"{actual} bytes, expected {self.nbytes} "
                f"(truncated or overwritten)"
            )
        try:
            self._mm = np.memmap(
                self.path, dtype=self.dtype, mode="r", shape=self.shape
            )
        except (OSError, ValueError) as exc:
            # The stat raced a concurrent truncation, or the mapping
            # itself failed — still a storage-layer problem, never a
            # bare OSError for callers to guess at.
            raise TruncatedFileError(
                f"array {self.name!r}: backing file {self.path} could "
                f"not be mapped ({exc})"
            ) from exc
        recorded = self.store._checksums.get(self.name)
        if recorded is not None:
            fresh = _page_checksums(
                self._mm.reshape(-1).view(np.uint8), self.store.chunk_bytes
            )
            if not np.array_equal(fresh, recorded):
                bad = int(np.flatnonzero(fresh != recorded)[0])
                raise ChecksumError(
                    f"array {self.name!r}: page {bad} failed checksum "
                    f"verification on reopen"
                )

    # -- charged reads ----------------------------------------------------------

    def read_rows(
        self,
        starts: np.ndarray,
        counts: np.ndarray,
        think_time_s: float = 0.0,
    ) -> np.ndarray:
        """Gather ``counts[i]`` elements from ``starts[i]`` for each row.

        This is the *value file* access of the top-down step: one extent per
        frontier vertex, chunked to ≤4 KB requests.  Returns the
        concatenation of all rows (a real in-memory ``ndarray``).
        """
        values, charge = self.read_rows_deferred(starts, counts)
        charge.apply(think_time_s)
        return values

    def read_rows_deferred(
        self, starts: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, DeferredCharge]:
        """Like :meth:`read_rows`, but the device charge is returned
        instead of applied (see :class:`DeferredCharge`)."""
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        mm = self._memmap()
        if starts.size and (
            starts.min() < 0 or int((starts + counts).max()) > self.size
        ):
            raise StorageError(f"row extent outside array {self.name!r}")
        gather = concat_ranges(starts, counts)
        values = np.asarray(mm[gather])
        charge = DeferredCharge(
            array=self,
            offsets=starts * self.itemsize,
            lengths=counts * self.itemsize,
        )
        return values, charge

    def read_elements(
        self, indices: np.ndarray, width: int = 1, think_time_s: float = 0.0
    ) -> np.ndarray:
        """Read ``width`` consecutive elements at each index.

        This is the *array (index) file* access of the top-down step: for
        every frontier vertex the reader fetches ``indptr[v]`` and
        ``indptr[v+1]`` — i.e. ``width=2`` at offset ``v``.  Returns an
        ``(n, width)`` array.
        """
        values, charge = self.read_elements_deferred(indices, width)
        charge.apply(think_time_s)
        return values

    def read_elements_deferred(
        self, indices: np.ndarray, width: int = 1
    ) -> tuple[np.ndarray, DeferredCharge]:
        """Like :meth:`read_elements`, but with a deferred charge."""
        idx = np.asarray(indices, dtype=np.int64)
        if width <= 0:
            raise StorageError(f"width must be positive: {width}")
        mm = self._memmap()
        if idx.size and (idx.min() < 0 or int(idx.max()) + width > self.size):
            raise StorageError(f"element read outside array {self.name!r}")
        charge = DeferredCharge(
            array=self,
            offsets=idx * self.itemsize,
            lengths=np.full(idx.shape, width * self.itemsize, dtype=np.int64),
        )
        if idx.size == 0:
            return np.empty((0, width), dtype=self.dtype), charge
        gather = idx[:, None] + np.arange(width, dtype=np.int64)[None, :]
        values = np.asarray(mm[gather.ravel()]).reshape(-1, width)
        return values, charge

    def read_slice(self, lo: int, hi: int, think_time_s: float = 0.0) -> np.ndarray:
        """Sequential read of ``[lo, hi)`` charged as one streamed extent."""
        if not 0 <= lo <= hi <= self.size:
            raise StorageError(
                f"slice [{lo}, {hi}) outside array {self.name!r} of size {self.size}"
            )
        mm = self._memmap()
        self.store.charge(
            np.array([lo * self.itemsize], dtype=np.int64),
            np.array([(hi - lo) * self.itemsize], dtype=np.int64),
            think_time_s,
            file_key=self.name,
        )
        return np.asarray(mm[lo:hi])

    def to_ndarray(self) -> np.ndarray:
        """Uncharged full copy (for validation paths and tests only)."""
        return np.asarray(self._memmap()).copy()

    def close(self) -> None:
        """Release the memmap (idempotent)."""
        self._mm = None

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"ExternalArray({self.name!r}, {self.dtype}, n={self.size}, "
            f"device={self.store.device.name!r})"
        )
