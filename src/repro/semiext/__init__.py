"""Semi-external memory substrate: NVM device models, file-backed arrays,
simulated time, and iostat-equivalent accounting.

The paper runs on real 2013 NVM hardware (FusionIO ioDrive2 PCIe flash and
an Intel 320 SATA SSD).  This package substitutes that hardware with:

* **real file-backed data layout** — CSR index/value arrays genuinely live
  in files and are read through ≤4 KB chunked requests, so request counts
  and sizes (``avgrq-sz``) are measured, not modeled;
* **a calibrated device model** — per-request service times and queueing
  derived from the devices' published latency / bandwidth / IOPS, driving a
  :class:`SimulatedClock` that yields the *modeled* TEPS numbers;
* **iostat-equivalent statistics** — ``avgqu-sz`` / ``avgrq-sz`` / ``r/s``
  tracked per device, reproducing the paper's Figures 12–13 methodology.

See DESIGN.md §2 for the substitution rationale.
"""

from repro.semiext.clock import SimulatedClock
from repro.semiext.device import (
    DRAM_CHANNEL,
    PCIE_FLASH,
    SATA_SSD,
    BatchResult,
    DeviceModel,
)
from repro.semiext.faults import (
    CircuitState,
    DeviceHealthMonitor,
    FaultInjector,
    FaultOutcome,
    FaultPlan,
    ResilienceStats,
    RetryPolicy,
)
from repro.semiext.hierarchy import MemoryHierarchy, Placement, Tier
from repro.semiext.iostats import IoStats, IoSample
from repro.semiext.storage import DeferredCharge, ExternalArray, NVMStore
from repro.semiext.tiered import TieredBackwardStore, TieredScanner, truncated_nbytes
from repro.semiext.trace import RequestTrace, TraceRecord, attach_recorder

__all__ = [
    "SimulatedClock",
    "DeviceModel",
    "BatchResult",
    "PCIE_FLASH",
    "SATA_SSD",
    "DRAM_CHANNEL",
    "IoStats",
    "IoSample",
    "ExternalArray",
    "NVMStore",
    "DeferredCharge",
    "RequestTrace",
    "TraceRecord",
    "attach_recorder",
    "MemoryHierarchy",
    "Placement",
    "Tier",
    "TieredBackwardStore",
    "TieredScanner",
    "truncated_nbytes",
    "FaultPlan",
    "FaultOutcome",
    "FaultInjector",
    "RetryPolicy",
    "CircuitState",
    "DeviceHealthMonitor",
    "ResilienceStats",
]
