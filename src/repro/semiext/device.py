"""Storage device performance models.

Each :class:`DeviceModel` captures the three first-order parameters of a
block device — per-request latency, streaming bandwidth, and sustainable
IOPS — plus an internal parallelism (``channels``: how many requests the
device services concurrently; NCQ depth for SATA, channel count for PCIe
flash).

Batch service model
-------------------
BFS issues requests from ``concurrency`` synchronous workers (the paper:
48 OS threads, each reading its dequeued vertices' CSR rows with
``read(2)``).  That is a *closed* queueing system: each worker has at most
one outstanding request and spends ``think_time`` of CPU work between
requests.  :meth:`DeviceModel.submit` solves the batch with asymptotic
bounds of closed-network analysis (balanced-job bound):

* per-request service time ``S = latency + size / bandwidth``
* device saturation throughput ``X_dev = min(channels / S, max_iops)``
* offered throughput ``X_off = N / (S + Z)`` for ``N`` workers, think ``Z``
* achieved ``X = min(X_off, X_dev)``; batch elapsed ``= n_requests / X``
* mean device queue by Little's law: ``Q = X · R`` with response
  ``R = N/X − Z`` when saturated, else ``Q = X · S``.

This reproduces the qualitative iostat behaviour the paper reports
(Figures 12–13): queue lengths near the worker count when the device is the
bottleneck, and the slower device (SATA SSD) showing the longer queue.

Presets
-------
``PCIE_FLASH`` is calibrated to the FusionIO ioDrive2 (Table I), ``SATA_SSD``
to the Intel SSD 320 600 GB, ``DRAM_CHANNEL`` to a DDR3-1333 channel (used
only when a test wants to drive the same code path against "memory speed").
Numbers come from the 2012/2013 datasheets; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "DeviceModel",
    "BatchResult",
    "PCIE_FLASH",
    "SATA_SSD",
    "DRAM_CHANNEL",
    "SATA_HDD",
    "NVME_FLASH",
    "OPTANE_SSD",
    "DEVICE_CATALOG",
]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of servicing one request batch.

    Attributes
    ----------
    elapsed_s:
        Modeled wall time to drain the batch.
    mean_queue:
        Time-averaged number of in-flight + queued requests (iostat
        ``avgqu-sz`` contribution of this batch).
    throughput_iops:
        Achieved request rate.
    """

    elapsed_s: float
    mean_queue: float
    throughput_iops: float


@dataclass(frozen=True)
class DeviceModel:
    """A block device with latency/bandwidth/IOPS limits.

    Parameters
    ----------
    name:
        Human-readable device name (appears in iostat reports).
    read_latency_s:
        Per-request access latency in seconds (media + controller).
    read_bandwidth_bps:
        Peak streaming read bandwidth in bytes/second.
    max_read_iops:
        Sustainable 4 KB random-read IOPS.
    channels:
        Internal service parallelism (requests in flight inside the device).
    """

    name: str
    read_latency_s: float
    read_bandwidth_bps: float
    max_read_iops: float
    channels: int = 32

    def __post_init__(self) -> None:
        if self.read_latency_s < 0:
            raise ConfigurationError(f"negative latency: {self.read_latency_s}")
        if self.read_bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {self.read_bandwidth_bps}")
        if self.max_read_iops <= 0:
            raise ConfigurationError(f"IOPS must be positive: {self.max_read_iops}")
        if self.channels <= 0:
            raise ConfigurationError(f"channels must be positive: {self.channels}")

    # -- service model -------------------------------------------------------

    def service_time_s(self, request_bytes: float) -> float:
        """Mean service time of one request of ``request_bytes``."""
        if request_bytes < 0:
            raise ConfigurationError(f"negative request size: {request_bytes}")
        return self.read_latency_s + request_bytes / self.read_bandwidth_bps

    def saturation_iops(self, request_bytes: float) -> float:
        """Peak request rate for this request size (channel- or IOPS-capped)."""
        s = self.service_time_s(request_bytes)
        if s <= 0.0:
            return self.max_read_iops
        return min(self.channels / s, self.max_read_iops,
                   self.read_bandwidth_bps / max(request_bytes, 1.0))

    def submit(
        self,
        n_requests: int,
        total_bytes: int,
        concurrency: int,
        think_time_s: float = 0.0,
    ) -> BatchResult:
        """Service a batch of requests from a closed set of workers.

        Parameters
        ----------
        n_requests:
            Number of read requests in the batch.
        total_bytes:
            Total payload (mean request size = ``total_bytes/n_requests``).
        concurrency:
            Number of synchronous workers issuing the requests.
        think_time_s:
            Per-request CPU time each worker spends between requests.

        Returns
        -------
        BatchResult
            Elapsed time, time-averaged queue length, achieved IOPS.
        """
        if n_requests < 0 or total_bytes < 0:
            raise ConfigurationError("negative batch")
        if concurrency <= 0:
            raise ConfigurationError(f"concurrency must be positive: {concurrency}")
        if think_time_s < 0:
            raise ConfigurationError(f"negative think time: {think_time_s}")
        if n_requests == 0:
            return BatchResult(elapsed_s=0.0, mean_queue=0.0, throughput_iops=0.0)

        mean_size = total_bytes / n_requests
        s = self.service_time_s(mean_size)
        x_dev = self.saturation_iops(mean_size)
        n = float(concurrency)
        x_off = n / (s + think_time_s) if (s + think_time_s) > 0 else x_dev
        x = min(x_off, x_dev)
        if x <= 0.0:
            raise ConfigurationError("degenerate throughput")
        elapsed = n_requests / x
        if x < x_off:  # device-bound: workers pile up at the device
            response = n / x - think_time_s
            queue = x * response
        else:  # CPU-bound: requests barely queue
            queue = x * s
        return BatchResult(elapsed_s=elapsed, mean_queue=queue, throughput_iops=x)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.read_latency_s * 1e6:.0f} us, "
            f"{self.read_bandwidth_bps / 1e6:.0f} MB/s, "
            f"{self.max_read_iops / 1e3:.0f} kIOPS x{self.channels}"
        )


# -- presets (2013-era datasheet values; see EXPERIMENTS.md for sources) ------

PCIE_FLASH = DeviceModel(
    name="FusionIO ioDrive2 320GB",
    read_latency_s=68e-6,
    read_bandwidth_bps=1.4e9,
    max_read_iops=135_000.0,
    channels=32,
)
"""PCI Express attached flash of the paper's DRAM+PCIeFlash scenario."""

SATA_SSD = DeviceModel(
    name="Intel SSD 320 600GB",
    read_latency_s=75e-6,
    read_bandwidth_bps=270e6,
    max_read_iops=39_500.0,
    channels=10,
)
"""SATA SSD of the paper's DRAM+SSD scenario (NCQ-limited parallelism)."""

DRAM_CHANNEL = DeviceModel(
    name="DDR3-1333 channel",
    read_latency_s=80e-9,
    read_bandwidth_bps=10.6e9,
    max_read_iops=1e9,
    channels=4,
)
"""A DRAM channel expressed in the same vocabulary (tests/ablations only)."""

# -- extended catalog for the paper's "performance studies on various NVM
#    devices" future-work item (§VIII); see bench_ablation_devices -----------

SATA_HDD = DeviceModel(
    name="7.2k SATA HDD",
    read_latency_s=8e-3,
    read_bandwidth_bps=150e6,
    max_read_iops=150.0,
    channels=1,
)
"""A spinning disk: the seek-bound floor semi-external BFS must avoid."""

NVME_FLASH = DeviceModel(
    name="NVMe flash (datacenter, late-2010s)",
    read_latency_s=80e-6,
    read_bandwidth_bps=3.2e9,
    max_read_iops=600_000.0,
    channels=64,
)
"""A post-paper NVMe drive: ~4.4x the ioDrive2's IOPS."""

OPTANE_SSD = DeviceModel(
    name="Optane SSD (3D XPoint)",
    read_latency_s=10e-6,
    read_bandwidth_bps=2.4e9,
    max_read_iops=550_000.0,
    channels=16,
)
"""Low-latency storage-class memory: the limit the paper extrapolates
towards ("devices that achieve higher IOPS ... can instantly evacuate
I/O requests in a I/O queue", §VI-D)."""

DEVICE_CATALOG = (SATA_HDD, SATA_SSD, PCIE_FLASH, OPTANE_SSD, NVME_FLASH)
"""Device family ordered by sustained random-read IOPS (ablation sweep)."""
