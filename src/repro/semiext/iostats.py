"""iostat-equivalent I/O statistics.

The paper analyses device behaviour with ``iostat`` (§VI-D):

* ``avgqu-sz`` — time-averaged length of the device request queue
  (Figure 12: 36.1 for PCIe flash, 56.1 for the SATA SSD);
* ``avgrq-sz`` — mean request size in 512-byte sectors
  (Figure 13: ≈22.6 / 22.7 sectors, i.e. ~11.3 KB per merged request).

:class:`IoStats` reproduces both from the actual request stream the chunked
CSR reader issues: request counts and sector sizes are *measured*; queue
lengths come from the device model's closed-system solution (see
:mod:`repro.semiext.device`).  A time series of :class:`IoSample` records is
kept so the benchmarks can print the same curves the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.schema import (
    M_NVM_BATCHES,
    M_NVM_BUSY,
    M_NVM_BYTES,
    M_NVM_QUEUE_DEPTH,
    M_NVM_QUEUE_SECONDS,
    M_NVM_REQUEST_BYTES,
    M_NVM_REQUESTS,
    M_NVM_SECTORS,
)
from repro.util.chunking import SECTOR_BYTES

__all__ = ["IoSample", "IoStats"]


@dataclass(frozen=True)
class IoSample:
    """One accounting interval (typically one BFS level's I/O batch)."""

    t_start_s: float
    duration_s: float
    n_requests: int
    total_bytes: int
    mean_queue: float

    @property
    def avgrq_sectors(self) -> float:
        """Mean request size in sectors within this interval."""
        if self.n_requests == 0:
            return 0.0
        return self.total_bytes / self.n_requests / SECTOR_BYTES

    @property
    def reads_per_s(self) -> float:
        """Request rate within this interval (iostat ``r/s``)."""
        if self.duration_s <= 0:
            return 0.0
        return self.n_requests / self.duration_s


@dataclass
class IoStats:
    """Accumulating iostat-style statistics for one device.

    All aggregate properties are weighted exactly as ``iostat`` weights
    them: ``avgqu-sz`` is the queue-length integral over busy time divided
    by total observed time, ``avgrq-sz`` the sector total over the request
    total.
    """

    device_name: str = "nvm"
    samples: list[IoSample] = field(default_factory=list)
    obs: object = field(default=None, repr=False, compare=False)
    """Optional :class:`~repro.obs.Observability` mirror: every recorded
    batch also increments the session's ``nvm.*`` registry metrics, so
    the registry sees exactly what iostat sees (including trace replays
    and retry attempts)."""
    _n_requests: int = 0
    _total_bytes: int = 0
    _total_sectors: int = 0
    _busy_time_s: float = 0.0
    _queue_integral: float = 0.0

    def record_batch(
        self,
        t_start_s: float,
        duration_s: float,
        request_sizes: np.ndarray,
        mean_queue: float,
    ) -> IoSample:
        """Record one serviced batch.

        Parameters
        ----------
        t_start_s:
            Virtual time at which the batch started.
        duration_s:
            Modeled service duration of the batch.
        request_sizes:
            Per-request sizes in bytes (the *real* issued requests).
        mean_queue:
            Time-averaged queue length during the batch (device model).
        """
        if duration_s < 0:
            raise ConfigurationError(f"negative duration: {duration_s}")
        sizes = np.asarray(request_sizes, dtype=np.int64)
        n = int(sizes.size)
        total = int(sizes.sum()) if n else 0
        sectors = int(np.sum((sizes + SECTOR_BYTES - 1) // SECTOR_BYTES)) if n else 0
        sample = IoSample(
            t_start_s=t_start_s,
            duration_s=duration_s,
            n_requests=n,
            total_bytes=total,
            mean_queue=float(mean_queue),
        )
        self.samples.append(sample)
        self._n_requests += n
        self._total_bytes += total
        self._total_sectors += sectors
        self._busy_time_s += duration_s
        self._queue_integral += mean_queue * duration_s
        obs = self.obs
        if obs is not None and getattr(obs, "enabled", False):
            dev = self.device_name
            obs.counter(M_NVM_BATCHES, device=dev).inc()
            obs.counter(M_NVM_REQUESTS, device=dev).inc(n)
            obs.counter(M_NVM_BYTES, device=dev).inc(total)
            obs.counter(M_NVM_SECTORS, device=dev).inc(sectors)
            obs.counter(M_NVM_BUSY, device=dev).inc(duration_s)
            obs.counter(M_NVM_QUEUE_SECONDS, device=dev).inc(
                mean_queue * duration_s
            )
            obs.gauge(M_NVM_QUEUE_DEPTH, device=dev).set(mean_queue)
            obs.histogram(M_NVM_REQUEST_BYTES, device=dev).observe_many(sizes)
        return sample

    # -- aggregates (iostat names) --------------------------------------------

    @property
    def n_requests(self) -> int:
        """Total read requests issued."""
        return self._n_requests

    @property
    def total_bytes(self) -> int:
        """Total bytes read."""
        return self._total_bytes

    @property
    def busy_time_s(self) -> float:
        """Total modeled time the device spent servicing requests."""
        return self._busy_time_s

    def avgqu_sz(self, observed_time_s: float | None = None) -> float:
        """Time-averaged request queue length (iostat ``avgqu-sz``).

        ``observed_time_s`` defaults to busy time, matching the paper's
        methodology of sampling only while BFS drives the device.
        """
        t = self._busy_time_s if observed_time_s is None else observed_time_s
        if t <= 0:
            return 0.0
        return self._queue_integral / t

    @property
    def avgrq_sz(self) -> float:
        """Mean request size in 512-byte sectors (iostat ``avgrq-sz``)."""
        if self._n_requests == 0:
            return 0.0
        return self._total_sectors / self._n_requests

    def reads_per_s(self, observed_time_s: float | None = None) -> float:
        """Mean request rate (iostat ``r/s``)."""
        t = self._busy_time_s if observed_time_s is None else observed_time_s
        if t <= 0:
            return 0.0
        return self._n_requests / t

    def throughput_bps(self, observed_time_s: float | None = None) -> float:
        """Mean read throughput in bytes/s (iostat ``rMB/s`` × 2^20)."""
        t = self._busy_time_s if observed_time_s is None else observed_time_s
        if t <= 0:
            return 0.0
        return self._total_bytes / t

    def reset(self) -> None:
        """Drop all samples and zero the aggregates."""
        self.samples.clear()
        self._n_requests = 0
        self._total_bytes = 0
        self._total_sectors = 0
        self._busy_time_s = 0.0
        self._queue_integral = 0.0

    def format_iostat(self, n_intervals: int = 10) -> str:
        """Render the samples as an ``iostat -x``-style interval table.

        The busy time axis is split into ``n_intervals`` equal windows;
        each row aggregates the batches that started in that window,
        mimicking ``iostat <interval>`` output (the capture the paper's
        Figures 12–13 are drawn from).
        """
        header = (
            f"Device: {self.device_name}\n"
            f"{'t(s)':>8} {'r/s':>12} {'rMB/s':>8} "
            f"{'avgrq-sz':>9} {'avgqu-sz':>9}"
        )
        active = [s for s in self.samples if s.n_requests > 0]
        if not active or n_intervals < 1:
            return header + "\n  (no I/O recorded)"
        t_end = max(s.t_start_s + s.duration_s for s in active)
        t_start = min(s.t_start_s for s in active)
        width = max((t_end - t_start) / n_intervals, 1e-12)
        lines = [header]
        for i in range(n_intervals):
            lo = t_start + i * width
            hi = lo + width
            window = [s for s in active if lo <= s.t_start_s < hi]
            if not window:
                continue
            reqs = sum(s.n_requests for s in window)
            byts = sum(s.total_bytes for s in window)
            busy = sum(s.duration_s for s in window)
            queue = (
                sum(s.mean_queue * s.duration_s for s in window) / busy
                if busy > 0
                else 0.0
            )
            rq = byts / reqs / SECTOR_BYTES if reqs else 0.0
            lines.append(
                f"{lo:8.4f} {reqs / max(busy, 1e-12):12,.0f} "
                f"{byts / max(busy, 1e-12) / (1 << 20):8.1f} "
                f"{rq:9.1f} {queue:9.1f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"IoStats({self.device_name}: {self._n_requests} reqs, "
            f"avgrq-sz={self.avgrq_sz:.1f} sectors, "
            f"avgqu-sz={self.avgqu_sz():.1f})"
        )
