"""Partial offloading of the backward graph (paper §V-C and §VI-E).

The bottom-up direction usually finds a frontier parent within the first
few adjacency entries of an unvisited vertex, so most of the backward
graph's bytes are never referenced.  The paper therefore proposes keeping
only a *hot* portion of the backward graph in DRAM and streaming the rest
from NVM, and Figure 14 estimates the trade-off.  Its prose supports two
readings of "limit the number of edges for a vertex to store on DRAM",
and the two produce the paper's two (mutually inconsistent) number series
— so this module implements **both** and the Fig. 14 bench reports both:

* :class:`PrefixOffloadScanner` — keep the **first k edges of every row**
  in DRAM, offload each row's suffix.  Reproduces the *access* series
  (38.2 % of probes on NVM at k=2 falling to 0.7 % at k=32): larger k
  means the early-terminating scan almost never runs past the DRAM
  prefix.
* :class:`DegreeThresholdScanner` — offload **whole rows of degree ≤ k**.
  Reproduces the *size* series (DRAM shrinks by 2.6 % at k=2 and 15.1 %
  at k=32): in a Kronecker graph low-degree vertices hold a small, slowly
  growing share of the edges.

Both implement the :class:`~repro.bfs.bottomup.BottomUpScanner` protocol
and honour early termination *for real*: the NVM portion of a row is only
fetched when the DRAM portion yielded no frontier hit (§V-C's "we first
read vertices on DRAM, and then we continue to read vertices on NVM in a
streaming fashion").
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottomup import ScanOutcome
from repro.csr.graph import CSRGraph
from repro.csr.io import ExternalCSR, offload_csr
from repro.errors import ConfigurationError
from repro.semiext.storage import NVMStore
from repro.util.bitmap import Bitmap
from repro.util.gather import concat_ranges, first_true_per_segment

__all__ = ["PrefixOffloadScanner", "DegreeThresholdScanner", "split_prefix"]


def split_prefix(shard: CSRGraph, k: int) -> tuple[CSRGraph, CSRGraph]:
    """Split a CSR into (first-k-edges-per-row, remainder) CSRs.

    Row order and within-row order are preserved, so scanning the prefix
    then the suffix visits exactly the original scan order.
    """
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    deg = shard.degrees()
    starts = shard.indptr[:-1]
    pre_counts = np.minimum(deg, k)
    suf_counts = deg - pre_counts

    def _make(counts: np.ndarray, offsets: np.ndarray) -> CSRGraph:
        indptr = np.empty(shard.n_rows + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        adj = shard.adj[concat_ranges(offsets, counts)]
        return CSRGraph(
            indptr=indptr, adj=np.ascontiguousarray(adj), n_cols=shard.n_cols
        )

    prefix = _make(pre_counts, starts)
    suffix = _make(suf_counts, starts + pre_counts)
    return prefix, suffix


class PrefixOffloadScanner:
    """Bottom-up scanner with per-row DRAM prefix and NVM suffix.

    Parameters
    ----------
    shard:
        The full backward shard to split.
    k:
        Edges per row kept in DRAM.
    store:
        NVM store holding the suffix CSR.
    name:
        File-name prefix inside the store.
    """

    def __init__(self, shard: CSRGraph, k: int, store: NVMStore, name: str) -> None:
        self.k = int(k)
        prefix, suffix = split_prefix(shard, k)
        self.prefix = prefix
        self.suffix: ExternalCSR = offload_csr(suffix, store, name)
        self._full_nbytes = shard.nbytes

    # -- capacity accounting (Fig. 14's size axis) ---------------------------------

    @property
    def dram_nbytes(self) -> int:
        """Bytes kept in DRAM."""
        return self.prefix.nbytes

    @property
    def nvm_nbytes(self) -> int:
        """Bytes offloaded to NVM."""
        return self.suffix.nbytes

    @property
    def dram_reduction(self) -> float:
        """Fraction of the original shard's bytes moved off DRAM."""
        if self._full_nbytes == 0:
            return 0.0
        return 1.0 - self.prefix.nbytes / self._full_nbytes

    # -- scanning -------------------------------------------------------------------

    def scan(self, local_rows: np.ndarray, frontier: Bitmap) -> ScanOutcome:
        """Scan the DRAM prefix, then the NVM suffix only on misses."""
        rows = np.asarray(local_rows, dtype=np.int64)
        parents = np.full(rows.size, -1, dtype=np.int64)

        # Phase 1: scan the DRAM prefix with early termination.
        p_starts, p_counts = self.prefix.row_extents(rows)
        p_neigh = self.prefix.adj[concat_ranges(p_starts, p_counts)]
        scanned_dram = 0
        if p_neigh.size:
            hits = frontier.test_many(p_neigh)
            hit_at, scanned = first_true_per_segment(hits, p_counts)
            scanned_dram = int(scanned.sum())
            found = hit_at >= 0
            parents[found] = p_neigh[hit_at[found]]
        else:
            found = np.zeros(rows.size, dtype=bool)

        # Phase 2: rows without a prefix hit continue into the NVM suffix
        # — this is the only place the device gets touched, preserving the
        # early exit across the DRAM/NVM boundary.
        pending = np.flatnonzero(~found)
        scanned_nvm = 0
        if pending.size:
            s_rows = rows[pending]
            s_neigh, s_counts = self.suffix.gather_rows(s_rows)
            if s_neigh.size:
                hits = frontier.test_many(s_neigh)
                hit_at, scanned = first_true_per_segment(hits, s_counts)
                scanned_nvm = int(scanned.sum())
                s_found = hit_at >= 0
                parents[pending[s_found]] = s_neigh[hit_at[s_found]]
        return ScanOutcome(
            parents=parents, scanned_dram=scanned_dram, scanned_nvm=scanned_nvm
        )


class DegreeThresholdScanner:
    """Bottom-up scanner offloading whole rows of degree ≤ k to NVM.

    Rows with degree > k stay entirely in DRAM; the low-degree tail lives
    on the device and is fetched (with early termination intact) only when
    such a row is actually scanned.
    """

    def __init__(self, shard: CSRGraph, k: int, store: NVMStore, name: str) -> None:
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self.k = int(k)
        deg = shard.degrees()
        starts = shard.indptr[:-1]
        self._on_nvm = deg <= k  # per-row placement mask

        def _masked(keep: np.ndarray) -> CSRGraph:
            counts = np.where(keep, deg, 0).astype(np.int64)
            indptr = np.empty(shard.n_rows + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(counts, out=indptr[1:])
            adj = shard.adj[concat_ranges(starts, counts)]
            return CSRGraph(
                indptr=indptr, adj=np.ascontiguousarray(adj), n_cols=shard.n_cols
            )

        self.dram = _masked(~self._on_nvm)
        nvm_csr = _masked(self._on_nvm)
        self.nvm: ExternalCSR = offload_csr(nvm_csr, store, name)
        self._full_nbytes = shard.nbytes

    @property
    def dram_nbytes(self) -> int:
        """Bytes kept in DRAM."""
        return self.dram.nbytes

    @property
    def nvm_nbytes(self) -> int:
        """Bytes offloaded to NVM."""
        return self.nvm.nbytes

    @property
    def dram_reduction(self) -> float:
        """Fraction of the original shard's bytes moved off DRAM."""
        if self._full_nbytes == 0:
            return 0.0
        return 1.0 - self.dram.nbytes / self._full_nbytes

    def scan(self, local_rows: np.ndarray, frontier: Bitmap) -> ScanOutcome:
        """Scan DRAM-resident rows in memory, offloaded rows via NVM."""
        rows = np.asarray(local_rows, dtype=np.int64)
        parents = np.full(rows.size, -1, dtype=np.int64)
        on_nvm = self._on_nvm[rows]

        scanned_dram = 0
        d_idx = np.flatnonzero(~on_nvm)
        if d_idx.size:
            d_rows = rows[d_idx]
            starts, counts = self.dram.row_extents(d_rows)
            neigh = self.dram.adj[concat_ranges(starts, counts)]
            if neigh.size:
                hits = frontier.test_many(neigh)
                hit_at, scanned = first_true_per_segment(hits, counts)
                scanned_dram = int(scanned.sum())
                found = hit_at >= 0
                parents[d_idx[found]] = neigh[hit_at[found]]

        scanned_nvm = 0
        n_idx = np.flatnonzero(on_nvm)
        if n_idx.size:
            n_rows = rows[n_idx]
            neigh, counts = self.nvm.gather_rows(n_rows)
            if neigh.size:
                hits = frontier.test_many(neigh)
                hit_at, scanned = first_true_per_segment(hits, counts)
                scanned_nvm = int(scanned.sum())
                found = hit_at >= 0
                parents[n_idx[found]] = neigh[hit_at[found]]
        return ScanOutcome(
            parents=parents, scanned_dram=scanned_dram, scanned_nvm=scanned_nvm
        )
