"""Two-tier memory hierarchy with capacity enforcement.

The paper's scenarios (Table I) differ only in where data may live: 128 GB
of DRAM (DRAM-only) versus 64 GB of DRAM plus a 320/600 GB NVM device.
:class:`MemoryHierarchy` tracks named allocations against both budgets and
is the mechanism by which the :class:`repro.core.offload.OffloadPlanner`
*proves* that a placement fits — e.g. that at SCALE 27 the backward graph +
BFS status data (48.2 GB) fit in 64 GB while the forward graph (40.1 GB)
must go to NVM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.semiext.storage import ExternalArray, NVMStore

__all__ = ["Tier", "Placement", "MemoryHierarchy"]


class Tier(enum.Enum):
    """Memory tier an allocation lives in."""

    DRAM = "dram"
    NVM = "nvm"


@dataclass(frozen=True)
class Placement:
    """One named allocation: where it lives and how big it is."""

    name: str
    tier: Tier
    nbytes: int


class MemoryHierarchy:
    """DRAM + optional NVM with per-tier capacity accounting.

    Parameters
    ----------
    dram_capacity:
        DRAM budget in bytes.
    nvm_store:
        Backing store for NVM placements; ``None`` models a DRAM-only
        machine (any NVM placement then raises :class:`CapacityError`).
    nvm_capacity:
        NVM budget in bytes (defaults to unlimited when a store is given).
    """

    def __init__(
        self,
        dram_capacity: int,
        nvm_store: NVMStore | None = None,
        nvm_capacity: int | None = None,
    ) -> None:
        if dram_capacity <= 0:
            raise ConfigurationError(
                f"dram_capacity must be positive: {dram_capacity}"
            )
        if nvm_capacity is not None and nvm_capacity < 0:
            raise ConfigurationError(f"negative nvm_capacity: {nvm_capacity}")
        self.dram_capacity = int(dram_capacity)
        self.nvm_store = nvm_store
        self.nvm_capacity = (
            int(nvm_capacity)
            if nvm_capacity is not None
            else (None if nvm_store is None else None)
        )
        self._placements: dict[str, Placement] = {}

    # -- accounting --------------------------------------------------------------

    def used(self, tier: Tier) -> int:
        """Bytes currently allocated in ``tier``."""
        return sum(p.nbytes for p in self._placements.values() if p.tier is tier)

    def remaining(self, tier: Tier) -> int | None:
        """Free bytes in ``tier`` (``None`` = unbounded NVM)."""
        if tier is Tier.DRAM:
            return self.dram_capacity - self.used(Tier.DRAM)
        if self.nvm_capacity is None:
            return None
        return self.nvm_capacity - self.used(Tier.NVM)

    def fits(self, nbytes: int, tier: Tier) -> bool:
        """Would an ``nbytes`` allocation fit in ``tier`` right now?"""
        if tier is Tier.NVM and self.nvm_store is None:
            return False
        rem = self.remaining(tier)
        return rem is None or nbytes <= rem

    def reserve(self, name: str, nbytes: int, tier: Tier) -> Placement:
        """Reserve capacity without materializing data (planner dry runs)."""
        if nbytes < 0:
            raise ConfigurationError(f"negative allocation: {nbytes}")
        if name in self._placements:
            raise CapacityError(f"allocation {name!r} already exists")
        if not self.fits(nbytes, tier):
            raise CapacityError(
                f"{name!r} ({nbytes} B) does not fit in {tier.value}: "
                f"remaining={self.remaining(tier)}"
                + (" (no NVM device)" if tier is Tier.NVM and self.nvm_store is None else "")
            )
        placement = Placement(name=name, tier=tier, nbytes=nbytes)
        self._placements[name] = placement
        return placement

    def release(self, name: str) -> None:
        """Free a reservation (and drop its NVM file if materialized there)."""
        placement = self._placements.pop(name, None)
        if placement is None:
            raise CapacityError(f"no allocation named {name!r}")
        if (
            placement.tier is Tier.NVM
            and self.nvm_store is not None
            and name in self.nvm_store
        ):
            self.nvm_store.drop_array(name)

    # -- placement of real arrays --------------------------------------------------

    def place_array(
        self, name: str, array: np.ndarray, tier: Tier
    ) -> np.ndarray | ExternalArray:
        """Materialize ``array`` in ``tier``; returns the resident handle.

        DRAM placements return the array itself (contiguous); NVM placements
        write it through the store and return an :class:`ExternalArray`.
        """
        arr = np.ascontiguousarray(array)
        self.reserve(name, arr.nbytes, tier)
        if tier is Tier.DRAM:
            return arr
        assert self.nvm_store is not None  # guaranteed by reserve()
        return self.nvm_store.put_array(name, arr)

    def placements(self) -> list[Placement]:
        """All current placements, insertion-ordered."""
        return list(self._placements.values())

    def describe(self) -> str:
        """Multi-line capacity report (used by the CLI and examples)."""
        from repro.util.units import format_bytes

        lines = [
            f"DRAM: {format_bytes(self.used(Tier.DRAM))} / "
            f"{format_bytes(self.dram_capacity)}"
        ]
        if self.nvm_store is not None:
            cap = (
                format_bytes(self.nvm_capacity)
                if self.nvm_capacity is not None
                else "unbounded"
            )
            lines.append(
                f"NVM ({self.nvm_store.device.name}): "
                f"{format_bytes(self.used(Tier.NVM))} / {cap}"
            )
        else:
            lines.append("NVM: none")
        for p in self._placements.values():
            from repro.util.units import format_bytes as fb

            lines.append(f"  {p.name:<24} {p.tier.value:<5} {fb(p.nbytes)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MemoryHierarchy(dram={self.used(Tier.DRAM)}/{self.dram_capacity}, "
            f"nvm={self.used(Tier.NVM)}, placements={len(self._placements)})"
        )
