"""Fault injection and resilience primitives for the semi-external path.

The paper's design bet is that semi-external BFS can live with a slow,
flaky medium because the schedule is biased toward the in-DRAM bottom-up
phase.  Real flash arrays misbehave in exactly the ways that bet must
absorb — transient ``EIO`` on a read, multi-millisecond garbage-collection
pauses, torn/short reads, and outright device death (FlashGraph and
Graphyti both engineer around the same pathology).  This module supplies
the pieces the storage layer composes into a resilient read path:

* :class:`FaultPlan` — a declarative, seeded description of *what* to
  inject (rates and timings).  Deterministic: one plan + one request
  stream always produces one fault sequence.
* :class:`FaultInjector` — the plan's runtime: draws a
  :class:`FaultOutcome` per read attempt from its own seeded generator.
* :class:`RetryPolicy` — bounded retries with capped exponential backoff
  and an optional per-request timeout; every wait is charged to the
  simulated clock so resilience costs time on the same axis as I/O.
* :class:`DeviceHealthMonitor` — sliding-window error tracking with a
  circuit breaker.  Its :meth:`~DeviceHealthMonitor.health_score` feeds
  :class:`~repro.bfs.policies.PolicyInputs` (a degraded device pushes the
  α/β schedule further toward bottom-up); an open circuit makes
  :class:`~repro.bfs.semi_external.SemiExternalBFS` fall back to
  bottom-up-only traversal on the in-DRAM backward graph.
* :class:`ResilienceStats` — the accounting the analysis report prints
  (retries, backoff time, checksum failures, GC-pause time).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FaultPlan",
    "FaultOutcome",
    "FaultInjector",
    "RetryPolicy",
    "CircuitState",
    "DeviceHealthMonitor",
    "ResilienceStats",
]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded description of device misbehaviour.

    All rates are per *read attempt* (one device batch submission).

    Parameters
    ----------
    seed:
        Seed of the injector's private generator; the same plan replayed
        against the same request stream reproduces the same faults.
    error_rate:
        Probability an attempt fails with a transient read error (the
        modeled ``EIO``); the attempt's device time is still charged.
    torn_rate:
        Probability an attempt returns short/torn data.  The resilient
        reader detects this via per-chunk checksums and retries.
    gc_rate:
        Probability an attempt stalls behind a flash garbage-collection
        pause of ``gc_pause_s`` (charged to the simulated clock and to
        the device's busy time, like a real GC stall under ``iostat``).
    gc_pause_s:
        Duration of one modeled GC pause (flash-translation-layer stalls
        are typically 1–100 ms; default 5 ms).
    fail_at_s:
        Simulated time at which the device fails hard; every attempt at
        or after this instant raises
        :class:`~repro.errors.DeviceFailedError`.  ``None`` = never.
    crash_at_s:
        Simulated time at which the *process* dies.  Checked at level
        boundaries by the checkpointing engines; the first boundary at or
        after this instant raises
        :class:`~repro.errors.ProcessCrashError` through the engine.
        One-shot: the injector disarms after firing, modeling a process
        restart that does not immediately re-crash.  ``None`` = never.
    crash_at_level:
        BFS level boundary at which the process dies (the crash fires
        after level ``crash_at_level`` completes and its checkpoint is
        written).  One-shot like ``crash_at_s``.  ``None`` = never.
    crash_torn:
        When the crash fires, the checkpoint epoch written at that
        boundary is torn (its CRC frame is corrupted on disk), so
        recovery must detect the bad epoch and fall back to the previous
        one.
    """

    seed: int = 0
    error_rate: float = 0.0
    torn_rate: float = 0.0
    gc_rate: float = 0.0
    gc_pause_s: float = 5e-3
    fail_at_s: float | None = None
    crash_at_s: float | None = None
    crash_at_level: int | None = None
    crash_torn: bool = False

    def __post_init__(self) -> None:
        for name in ("error_rate", "torn_rate", "gc_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {rate}")
        if self.error_rate + self.torn_rate > 1.0:
            raise ConfigurationError(
                f"error_rate + torn_rate must be <= 1: "
                f"{self.error_rate} + {self.torn_rate}"
            )
        if self.gc_pause_s < 0:
            raise ConfigurationError(f"negative gc_pause_s: {self.gc_pause_s}")
        if self.fail_at_s is not None and self.fail_at_s < 0:
            raise ConfigurationError(f"negative fail_at_s: {self.fail_at_s}")
        if self.crash_at_s is not None and self.crash_at_s < 0:
            raise ConfigurationError(f"negative crash_at_s: {self.crash_at_s}")
        if self.crash_at_level is not None and self.crash_at_level < 0:
            raise ConfigurationError(
                f"negative crash_at_level: {self.crash_at_level}"
            )
        if self.crash_torn and not self.crashes:
            raise ConfigurationError(
                "crash_torn requires crash_at_s or crash_at_level"
            )

    @property
    def crashes(self) -> bool:
        """Whether this plan schedules a process crash."""
        return self.crash_at_s is not None or self.crash_at_level is not None

    @property
    def active(self) -> bool:
        """Whether this plan injects anything at all."""
        return (
            self.error_rate > 0
            or self.torn_rate > 0
            or self.gc_rate > 0
            or self.fail_at_s is not None
            or self.crashes
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (nothing injected)."""
        return cls()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec into a plan.

        The grammar is a comma-separated ``key=value`` list over the plan
        fields, with ``gc_pause_ms`` accepted as a convenience::

            error_rate=0.02,gc_rate=0.01,gc_pause_ms=5,seed=7
            fail_at_s=0.25,seed=3
            crash_at_level=3,crash_torn=1,seed=11
            none

        >>> FaultPlan.parse("error_rate=0.05,seed=9").error_rate
        0.05
        """
        spec = spec.strip()
        if spec in ("", "none"):
            return cls.none()
        kwargs: dict[str, float | int | bool | None] = {}
        for item in spec.split(","):
            if "=" not in item:
                raise ConfigurationError(
                    f"fault spec item {item!r} is not key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key in ("seed", "crash_at_level"):
                    kwargs[key] = int(value)
                elif key == "gc_pause_ms":
                    kwargs["gc_pause_s"] = float(value) / 1e3
                elif key == "crash_torn":
                    if value.lower() not in ("0", "1", "true", "false"):
                        raise ValueError(value)
                    kwargs["crash_torn"] = value.lower() in ("1", "true")
                elif key in ("error_rate", "torn_rate", "gc_rate",
                             "gc_pause_s", "fail_at_s", "crash_at_s"):
                    kwargs[key] = float(value)
                else:
                    raise ConfigurationError(
                        f"unknown fault spec key {key!r} "
                        "(expected error_rate, torn_rate, gc_rate, "
                        "gc_pause_s/gc_pause_ms, fail_at_s, crash_at_s, "
                        "crash_at_level, crash_torn, seed)"
                    )
            except ValueError:
                raise ConfigurationError(
                    f"bad value for fault spec key {key!r}: {value!r}"
                ) from None
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultOutcome:
    """What the injector decided for one read attempt."""

    transient: bool = False
    torn: bool = False
    gc_pause_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the attempt succeeds (a GC pause alone still succeeds)."""
        return not (self.transient or self.torn)


_OK = FaultOutcome()


class FaultInjector:
    """Runtime of a :class:`FaultPlan`: one seeded draw per read attempt.

    The injector owns a private :class:`numpy.random.Generator`, so the
    fault sequence depends only on ``(plan.seed, attempt number)`` — never
    on wall time or interleaving (the store serializes attempts under its
    charge lock).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.n_draws = 0
        self._crash_armed = plan.crashes

    def hard_failed(self, now_s: float) -> bool:
        """Whether the device is hard-failed at simulated time ``now_s``."""
        return self.plan.fail_at_s is not None and now_s >= self.plan.fail_at_s

    @property
    def crash_armed(self) -> bool:
        """Whether the plan's process crash has not fired yet."""
        return self._crash_armed

    def crash_due(self, now_s: float, level: int | None = None) -> bool:
        """One-shot process-crash check at a level boundary.

        Returns ``True`` (and disarms — a restarted process does not
        immediately re-crash) when the plan's crash trigger is reached:
        the simulated clock is at or past ``crash_at_s``, or the engine
        just completed level ``crash_at_level``.
        """
        if not self._crash_armed:
            return False
        plan = self.plan
        due = (
            plan.crash_at_s is not None and now_s >= plan.crash_at_s
        ) or (
            plan.crash_at_level is not None
            and level is not None
            and level >= plan.crash_at_level
        )
        if due:
            self._crash_armed = False
        return due

    def draw(self) -> FaultOutcome:
        """Decide the fate of the next read attempt."""
        plan = self.plan
        self.n_draws += 1
        u = float(self._rng.random())
        transient = u < plan.error_rate
        torn = (not transient) and u < plan.error_rate + plan.torn_rate
        pause = 0.0
        if plan.gc_rate > 0 and float(self._rng.random()) < plan.gc_rate:
            pause = plan.gc_pause_s
        if not (transient or torn or pause):
            return _OK
        return FaultOutcome(transient=transient, torn=torn, gc_pause_s=pause)

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan!r}, draws={self.n_draws})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff.

    Parameters
    ----------
    max_retries:
        Failed attempts retried before the error escalates (a request is
        tried at most ``max_retries + 1`` times).
    backoff_base_s:
        Wait before the first retry.
    backoff_multiplier:
        Growth factor per subsequent retry.
    backoff_max_s:
        Cap on any single backoff wait.
    timeout_s:
        Per-attempt deadline on *modeled* time (service + GC stall); an
        attempt exceeding it counts as a transient failure and is
        retried.  ``None`` disables the deadline.
    """

    max_retries: int = 4
    backoff_base_s: float = 100e-6
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 50e-3
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"negative max_retries: {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ConfigurationError(f"negative backoff: {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ConfigurationError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive: {self.timeout_s}")

    def backoff_s(self, attempt: int) -> float:
        """Backoff wait after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1: {attempt}")
        wait = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return min(wait, self.backoff_max_s)


class CircuitState(enum.Enum):
    """Health classification of one device."""

    CLOSED = "closed"
    DEGRADED = "degraded"
    OPEN = "open"


class DeviceHealthMonitor:
    """Sliding-window device health tracking with a circuit breaker.

    Every read attempt reports success or failure; the monitor keeps the
    last ``window`` outcomes and classifies the device:

    * ``CLOSED`` — error rate below ``degraded_error_rate``;
    * ``DEGRADED`` — elevated error rate; :meth:`health_score` drops below
      1.0, biasing the α/β schedule further toward bottom-up;
    * ``OPEN`` — a hard failure was reported, or the windowed error rate
      reached ``open_error_rate``.  Open is terminal for the run: further
      reads are refused (:class:`~repro.errors.DeviceFailedError`) and
      the engine completes in bottom-up-only degraded mode.

    ``open_error_rate=None`` disables rate-based tripping (the breaker
    then opens only on hard failure) — useful when transient faults must
    be absorbed without ever abandoning the device.
    """

    def __init__(
        self,
        window: int = 64,
        min_samples: int = 8,
        degraded_error_rate: float = 0.05,
        open_error_rate: float | None = 0.5,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1: {window}")
        if min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1: {min_samples}")
        if not 0.0 < degraded_error_rate <= 1.0:
            raise ConfigurationError(
                f"degraded_error_rate must be in (0, 1]: {degraded_error_rate}"
            )
        if open_error_rate is not None and not 0.0 < open_error_rate <= 1.0:
            raise ConfigurationError(
                f"open_error_rate must be in (0, 1] or None: {open_error_rate}"
            )
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.degraded_error_rate = float(degraded_error_rate)
        self.open_error_rate = (
            None if open_error_rate is None else float(open_error_rate)
        )
        self._outcomes: deque[bool] = deque(maxlen=self.window)
        self.state = CircuitState.CLOSED
        self.transitions: list[tuple[float, CircuitState]] = []
        self.n_successes = 0
        self.n_errors = 0

    # -- reporting attempts ----------------------------------------------------

    def record_success(self, now_s: float) -> None:
        """One read attempt succeeded."""
        self.n_successes += 1
        self._outcomes.append(True)
        self._reclassify(now_s)

    def record_error(self, now_s: float) -> None:
        """One read attempt failed transiently."""
        self.n_errors += 1
        self._outcomes.append(False)
        self._reclassify(now_s)

    def record_hard_failure(self, now_s: float) -> None:
        """The device failed hard; the circuit opens immediately."""
        self.n_errors += 1
        self._outcomes.append(False)
        self._transition(CircuitState.OPEN, now_s)

    # -- classification --------------------------------------------------------

    @property
    def error_rate(self) -> float:
        """Error fraction over the sliding window."""
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    @property
    def circuit_open(self) -> bool:
        """Whether the breaker refuses further device reads."""
        return self.state is CircuitState.OPEN

    def health_score(self) -> float:
        """Device health in [0, 1] for the direction policy.

        1.0 = healthy, 0.0 = open circuit; in between, the complement of
        the windowed error rate.
        """
        if self.circuit_open:
            return 0.0
        return max(0.0, 1.0 - self.error_rate)

    def _reclassify(self, now_s: float) -> None:
        if self.circuit_open:  # open is terminal
            return
        if len(self._outcomes) < self.min_samples:
            return
        rate = self.error_rate
        if self.open_error_rate is not None and rate >= self.open_error_rate:
            self._transition(CircuitState.OPEN, now_s)
        elif rate >= self.degraded_error_rate:
            self._transition(CircuitState.DEGRADED, now_s)
        else:
            self._transition(CircuitState.CLOSED, now_s)

    def _transition(self, state: CircuitState, now_s: float) -> None:
        if state is self.state:
            return
        self.state = state
        self.transitions.append((float(now_s), state))

    def reset(self) -> None:
        """Forget all history and close the circuit."""
        self._outcomes.clear()
        self.state = CircuitState.CLOSED
        self.transitions.clear()
        self.n_successes = 0
        self.n_errors = 0

    def __repr__(self) -> str:
        return (
            f"DeviceHealthMonitor(state={self.state.value}, "
            f"error_rate={self.error_rate:.3f}, "
            f"attempts={self.n_successes + self.n_errors})"
        )


@dataclass
class ResilienceStats:
    """Accounting of the resilient read path (one store's lifetime).

    ``n_attempts`` counts every device batch submission, including the
    ones that failed; the device is charged exactly once per attempt, so
    ``IoStats`` request/byte totals grow with retries.  Backoff waits are
    host-side time (simulated clock only); GC pauses are device-side
    stalls (clock *and* iostat busy time).
    """

    n_attempts: int = 0
    n_retries: int = 0
    n_transient_errors: int = 0
    n_torn_reads: int = 0
    n_checksum_failures: int = 0
    n_timeouts: int = 0
    n_gc_pauses: int = 0
    n_hard_failures: int = 0
    n_refused_reads: int = 0
    backoff_time_s: float = 0.0
    gc_pause_time_s: float = 0.0
    degraded_levels: int = 0

    @property
    def n_errors(self) -> int:
        """Failed attempts of any transient kind."""
        return self.n_transient_errors + self.n_torn_reads + self.n_timeouts

    def reset(self) -> None:
        """Zero every counter."""
        for f in self.__dataclass_fields__:
            setattr(self, f, type(getattr(self, f))())

    def __repr__(self) -> str:
        return (
            f"ResilienceStats(attempts={self.n_attempts}, "
            f"retries={self.n_retries}, "
            f"backoff={self.backoff_time_s:.6f}s, "
            f"gc={self.gc_pause_time_s:.6f}s)"
        )
