"""Request-trace recording and cross-device replay.

The paper's device analysis (§VI-D) is trace-driven: capture the I/O
stream once, then reason about how different hardware would serve it
("this situation may be relaxed by using devices that achieve higher
IOPS").  :class:`RequestTrace` makes that workflow first-class:

* **record** — attach :func:`attach_recorder` to an
  :class:`~repro.semiext.storage.NVMStore` and every charged batch is
  appended (virtual time, per-extent offsets/lengths, file key);
* **persist** — traces round-trip through ``.npz`` files, so a SCALE-17
  capture can be analyzed without regenerating the graph;
* **replay** — :meth:`RequestTrace.replay` pushes the recorded extent
  stream through *any* device model and store configuration, answering
  "what would this exact BFS access pattern cost on an Optane drive /
  with a 64 KB chunk size / without the page cache?" without re-running
  BFS.

Replay preserves batch boundaries (one batch per recorded charge), so
queueing behaviour is reproduced faithfully, not just byte totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, StorageError
from repro.semiext.device import DeviceModel
from repro.semiext.iostats import IoStats
from repro.semiext.storage import NVMStore
from repro.util.chunking import DEFAULT_CHUNK_BYTES, DEFAULT_MAX_MERGED_BYTES

__all__ = ["TraceRecord", "RequestTrace", "attach_recorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One charged batch: the extents a single gather requested."""

    t_virtual_s: float
    file_key: str
    offsets: np.ndarray
    lengths: np.ndarray

    @property
    def total_bytes(self) -> int:
        """Requested payload of this batch."""
        return int(self.lengths.sum()) if self.lengths.size else 0


class RequestTrace:
    """An ordered capture of a store's charged batches."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    # -- capture ------------------------------------------------------------------

    def append(
        self,
        t_virtual_s: float,
        file_key: str,
        offsets: np.ndarray,
        lengths: np.ndarray,
    ) -> None:
        """Record one batch (copies the extent arrays)."""
        self.records.append(
            TraceRecord(
                t_virtual_s=float(t_virtual_s),
                file_key=str(file_key),
                offsets=np.asarray(offsets, dtype=np.int64).copy(),
                lengths=np.asarray(lengths, dtype=np.int64).copy(),
            )
        )

    @property
    def n_batches(self) -> int:
        """Number of recorded batches."""
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        """Total requested payload across the trace."""
        return sum(r.total_bytes for r in self.records)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace to an ``.npz`` file."""
        if not self.records:
            raise StorageError("refusing to save an empty trace")
        arrays: dict[str, np.ndarray] = {
            "t": np.array([r.t_virtual_s for r in self.records]),
            "keys": np.array([r.file_key for r in self.records]),
            "sizes": np.array(
                [r.offsets.size for r in self.records], dtype=np.int64
            ),
            "offsets": np.concatenate([r.offsets for r in self.records]),
            "lengths": np.concatenate([r.lengths for r in self.records]),
        }
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        """Read a trace written by :meth:`save`."""
        data = np.load(path, allow_pickle=False)
        trace = cls()
        pos = 0
        for t, key, size in zip(data["t"], data["keys"], data["sizes"]):
            size = int(size)
            trace.append(
                float(t),
                str(key),
                data["offsets"][pos : pos + size],
                data["lengths"][pos : pos + size],
            )
            pos += size
        return trace

    # -- replay ------------------------------------------------------------------------

    def replay(
        self,
        device: DeviceModel,
        workdir: str | Path,
        concurrency: int = 48,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        max_request_bytes: int = DEFAULT_MAX_MERGED_BYTES,
        page_cache_bytes: int = 0,
        io_mode: str = "sync",
    ) -> IoStats:
        """Push the captured extent stream through another configuration.

        Returns the replay's :class:`~repro.semiext.iostats.IoStats`
        (time axis = the replay store's fresh simulated clock).  The
        backing files are not needed: replay charges the device model
        only, which is all the statistics depend on.
        """
        if not self.records:
            raise ConfigurationError("cannot replay an empty trace")
        store = NVMStore(
            Path(workdir),
            device,
            concurrency=concurrency,
            chunk_bytes=chunk_bytes,
            max_request_bytes=max_request_bytes,
            page_cache_bytes=page_cache_bytes,
            io_mode=io_mode,
        )
        for record in self.records:
            store.charge(
                record.offsets, record.lengths, file_key=record.file_key
            )
        return store.iostats

    def __repr__(self) -> str:
        return (
            f"RequestTrace(batches={self.n_batches}, "
            f"bytes={self.total_bytes})"
        )


def attach_recorder(store: NVMStore) -> RequestTrace:
    """Start recording every charge on ``store``; returns the live trace.

    Implemented by wrapping the store's ``charge`` method; recording adds
    no modeled time and does not perturb the statistics.
    """
    trace = RequestTrace()
    original = store.charge

    def recording_charge(offsets, lengths, think_time_s=0.0, file_key=""):
        trace.append(store.clock.now(), file_key, offsets, lengths)
        return original(offsets, lengths, think_time_s, file_key=file_key)

    store.charge = recording_charge  # type: ignore[method-assign]
    return trace
