"""Differential oracles: what every engine's answer is checked against.

Three checks per engine run, in increasing strictness:

``validity``
    The parent array is a legal BFS tree of the input graph — the five
    Graph500 rules via :func:`repro.graph500.validate.validate_bfs_tree`.
``distance``
    The per-vertex hop counts derived from the tree equal the reference
    engine's (BFS trees are not unique, distances are).
``admissibility``
    Every chosen parent is *admissible*: a genuine graph neighbour that
    sits exactly one reference level above the child.  This catches an
    engine that fabricates a parent from the right level without an edge
    — a bug ``distance`` alone cannot see.

All three are pure functions of ``(edges, reference parent, candidate
result, root)`` so the shrinker and ``--replay`` can re-evaluate them on
mutated graphs.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.metrics import BFSResult
from repro.graph500.edgelist import EdgeList
from repro.graph500.validate import compute_levels, validate_bfs_tree

__all__ = [
    "DIFFERENTIAL_CHECKS",
    "check_validity",
    "check_distance",
    "check_admissibility",
    "differential_failures",
]

#: Check names in evaluation order (also the ``check`` metric label set).
DIFFERENTIAL_CHECKS = ("validity", "distance", "admissibility")


def check_validity(edges: EdgeList, result: BFSResult,
                   root: int) -> str | None:
    """Graph500 rules 1–5; returns the first violation, if any."""
    verdict = validate_bfs_tree(edges, result.parent, root)
    if verdict.ok:
        return None
    return verdict.violations[0]


def check_distance(edges: EdgeList, ref_parent: np.ndarray,
                   result: BFSResult, root: int) -> str | None:
    """Hop counts must equal the reference oracle's, vertex for vertex."""
    ref_levels, ref_err = compute_levels(np.asarray(ref_parent), root)
    if ref_err is not None:  # the oracle itself is broken — report loudly
        return f"reference tree invalid: {ref_err}"
    levels, err = compute_levels(np.asarray(result.parent), root)
    if err is not None:
        return f"candidate tree has no well-defined levels: {err}"
    if np.array_equal(levels, ref_levels):
        return None
    v = int(np.flatnonzero(levels != ref_levels)[0])
    return (
        f"distance mismatch at vertex {v}: engine says "
        f"{int(levels[v])}, reference says {int(ref_levels[v])}"
    )


def check_admissibility(edges: EdgeList, ref_parent: np.ndarray,
                        result: BFSResult, root: int) -> str | None:
    """Every parent must be a real neighbour one reference level up."""
    ref_levels, ref_err = compute_levels(np.asarray(ref_parent), root)
    if ref_err is not None:
        return f"reference tree invalid: {ref_err}"
    parent = np.asarray(result.parent)
    n = edges.n_vertices
    children = np.flatnonzero((parent != -1) & (np.arange(n) != root))
    if not children.size:
        return None
    parents = parent[children]
    out_of_range = (parents < 0) | (parents >= n)
    if out_of_range.any():
        v = int(children[np.flatnonzero(out_of_range)[0]])
        return f"vertex {v} has parent {int(parent[v])} outside [0, {n})"
    # (child, parent) must be an edge of the deduplicated graph ...
    keys = edges.sorted_edge_keys
    pair = (np.minimum(children, parents) * np.int64(n)
            + np.maximum(children, parents))
    if keys.size:
        pos = np.minimum(np.searchsorted(keys, pair), keys.size - 1)
        is_edge = keys[pos] == pair
    else:
        is_edge = np.zeros(children.size, dtype=bool)
    # ... and the parent must sit exactly one reference level above.
    level_ok = ref_levels[parents] == ref_levels[children] - 1
    bad = ~(is_edge & level_ok)
    if not bad.any():
        return None
    v = int(children[np.flatnonzero(bad)[0]])
    p = int(parent[v])
    why = "not a graph edge" if not bool(is_edge[np.flatnonzero(bad)[0]]) \
        else (f"parent at reference level {int(ref_levels[p])}, "
              f"child at {int(ref_levels[v])}")
    return f"inadmissible parent {p} for vertex {v}: {why}"


def differential_failures(edges: EdgeList, ref_parent: np.ndarray,
                          result: BFSResult,
                          root: int) -> list[tuple[str, str]]:
    """All failing differential checks as ``(check, message)`` pairs."""
    failures: list[tuple[str, str]] = []
    msg = check_validity(edges, result, root)
    if msg is not None:
        failures.append(("validity", msg))
    msg = check_distance(edges, ref_parent, result, root)
    if msg is not None:
        failures.append(("distance", msg))
    msg = check_admissibility(edges, ref_parent, result, root)
    if msg is not None:
        failures.append(("admissibility", msg))
    return failures
