"""The engine registry the conformance harness differentials over.

Every BFS implementation in the tree — the reference oracle, the fixed
single-direction baselines, the DRAM hybrid, its sharded-parallel twin,
the two NVM-offloaded variants and the serving layer's batched engine —
registers here under one uniform runner signature::

    run(case: GraphCase, setup: TrialSetup, root: int, workdir: Path)
        -> BFSResult

Each call builds a **fresh** engine (and, for external engines, a fresh
:class:`~repro.semiext.storage.NVMStore` with its own simulated clock and
health monitor), so two runs with the same inputs are bit-identical — the
property the differential harness, the shrinker and ``--replay`` all
stand on.

The registry is open: tests register deliberately-broken engines to
exercise the shrinker, and future engines join the conformance gate by
registering a spec rather than by editing the harness.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bfs.fully_external import FullyExternalBFS
from repro.bfs.hybrid import HybridBFS
from repro.bfs.metrics import BFSResult, Direction
from repro.bfs.policies import AlphaBetaPolicy, FixedPolicy
from repro.bfs.reference import ReferenceBFS
from repro.bfs.semi_external import SemiExternalBFS
from repro.core.config import ScenarioConfig, ScenarioKind
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.csr.graph import CSRGraph
from repro.csr.io import offload_csr
from repro.errors import ConfigurationError, ProcessCrashError
from repro.graph500.edgelist import EdgeList
from repro.numa.topology import NumaTopology
from repro.obs.session import NULL
from repro.recovery import (
    CheckpointManager,
    QuerySnapshot,
    RecoverableBFS,
    load_run,
)
from repro.semiext.device import PCIE_FLASH, SATA_SSD, DeviceModel
from repro.semiext.faults import FaultPlan
from repro.semiext.storage import NVMStore
from repro.serve.catalog import PinnedGraph
from repro.serve.engine import BatchedBFS

__all__ = [
    "DEVICES",
    "TrialSetup",
    "GraphCase",
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "run_engine",
]

#: Short device keys a :class:`TrialSetup` (and a JSON artifact) may name.
DEVICES: dict[str, DeviceModel] = {"pcie": PCIE_FLASH, "ssd": SATA_SSD}


@dataclass(frozen=True)
class TrialSetup:
    """One drawn scenario: device, α/β schedule and optional fault plan.

    DRAM-only engines ignore the device and fault plan — which is the
    point: every engine must return the same tree regardless of how much
    of this setup applies to it.
    """

    device: str = "pcie"
    alpha: float = 16.0
    beta: float = 64.0
    fault: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.device not in DEVICES:
            raise ConfigurationError(
                f"unknown device {self.device!r} (have {sorted(DEVICES)})"
            )

    @property
    def device_model(self) -> DeviceModel:
        """The device model behind the short key."""
        return DEVICES[self.device]

    def describe(self) -> dict:
        """JSON-safe summary (round-trips through repro artifacts)."""
        fault = None
        if self.fault is not None:
            fault = {
                "seed": int(self.fault.seed),
                "error_rate": float(self.fault.error_rate),
                "torn_rate": float(self.fault.torn_rate),
                "gc_rate": float(self.fault.gc_rate),
                "gc_pause_s": float(self.fault.gc_pause_s),
                "fail_at_s": (None if self.fault.fail_at_s is None
                              else float(self.fault.fail_at_s)),
                "crash_at_s": (None if self.fault.crash_at_s is None
                               else float(self.fault.crash_at_s)),
                "crash_at_level": (None if self.fault.crash_at_level is None
                                   else int(self.fault.crash_at_level)),
                "crash_torn": bool(self.fault.crash_torn),
            }
        return {
            "device": self.device,
            "alpha": float(self.alpha),
            "beta": float(self.beta),
            "fault": fault,
        }

    @classmethod
    def from_description(cls, desc: dict) -> "TrialSetup":
        """Inverse of :meth:`describe`."""
        fault = None
        if desc.get("fault") is not None:
            fault = FaultPlan(**desc["fault"])
        return cls(device=desc["device"], alpha=desc["alpha"],
                   beta=desc["beta"], fault=fault)


class GraphCase:
    """One concrete graph a trial runs every engine on.

    Wraps the raw :class:`EdgeList` and lazily derives the CSR and the
    NUMA-partitioned forward/backward pair, so cheap relations (that only
    permute the edge list) never pay construction for graphs they reject.
    """

    def __init__(self, edges: EdgeList,
                 topology: NumaTopology | None = None) -> None:
        self.edges = edges
        self.topology = topology or NumaTopology(n_nodes=2, cores_per_node=2)
        self._csr: CSRGraph | None = None
        self._forward: ForwardGraph | None = None
        self._backward: BackwardGraph | None = None

    @property
    def n_vertices(self) -> int:
        """Vertex count of the underlying edge list."""
        return self.edges.n_vertices

    @property
    def csr(self) -> CSRGraph:
        """The deduplicated CSR, built on first access."""
        if self._csr is None:
            self._csr = build_csr(self.edges)
        return self._csr

    @property
    def forward(self) -> ForwardGraph:
        """The NUMA-partitioned forward graph, built on first access."""
        if self._forward is None:
            self._forward = ForwardGraph(self.csr, self.topology)
        return self._forward

    @property
    def backward(self) -> BackwardGraph:
        """The NUMA-partitioned backward graph, built on first access."""
        if self._backward is None:
            self._backward = BackwardGraph(self.csr, self.topology)
        return self._backward

    def permuted(self, perm: np.ndarray) -> "GraphCase":
        """The same graph with vertex ids relabeled by ``perm``."""
        u, v = self.edges.endpoints
        endpoints = np.stack([perm[u], perm[v]]).astype(np.int64)
        return GraphCase(EdgeList(endpoints, self.n_vertices), self.topology)

    def with_extra_edges(self, extra_u: np.ndarray,
                         extra_v: np.ndarray) -> "GraphCase":
        """The same graph with duplicate/self-loop edges appended."""
        u, v = self.edges.endpoints
        endpoints = np.stack([
            np.concatenate([u, np.asarray(extra_u, dtype=np.int64)]),
            np.concatenate([v, np.asarray(extra_v, dtype=np.int64)]),
        ])
        return GraphCase(EdgeList(endpoints, self.n_vertices), self.topology)

    def __repr__(self) -> str:
        return (f"GraphCase(n={self.n_vertices}, "
                f"m={self.edges.endpoints.shape[1]})")


Runner = Callable[["GraphCase", TrialSetup, int, Path], BFSResult]


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine.

    Attributes
    ----------
    external:
        Reads adjacency through an :class:`NVMStore`, so fault plans
        apply and the fault-vs-clean relation is meaningful.
    schedule_sensitive:
        Consumes the α/β thresholds, so the schedule-invariance relation
        is meaningful.
    recoverable:
        Same signature as ``run``, but executes under the crash-recovery
        subsystem: the setup's fault plan may inject a process crash,
        and the runner checkpoints, resumes and returns the completed
        tree.  ``None`` means the crash-resume relation does not apply.
    dynamic:
        Answers queries through the mutation/repair subsystem
        (:mod:`repro.graphmut`), so the mutation metamorphic relations
        (idempotence, batch-order commutativity) are meaningful.
    """

    name: str
    run: Runner = field(compare=False)
    external: bool = False
    schedule_sensitive: bool = False
    description: str = ""
    recoverable: Runner | None = field(compare=False, default=None)
    dynamic: bool = False


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Add an engine to the conformance registry.

    Tests use ``replace=True`` to shadow a real engine with a broken one;
    accidental double registration stays an error.
    """
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"engine {spec.name!r} already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine (broken-engine fixtures clean up after themselves)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> EngineSpec:
    """Look up a registered engine."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"no conformance engine named {name!r} "
            f"(have {engine_names()})"
        ) from None


def engine_names() -> tuple[str, ...]:
    """Registered engine names, registration order (reference first)."""
    return tuple(_REGISTRY)


def run_engine(name: str, case: GraphCase, setup: TrialSetup, root: int,
               workdir: str | Path) -> BFSResult:
    """Run one registered engine once (fresh engine and store)."""
    return get_engine(name).run(case, setup, int(root), Path(workdir))


# -- store / engine builders ---------------------------------------------------


def _fresh_store(case: GraphCase, setup: TrialSetup,
                 workdir: Path) -> NVMStore:
    """A fresh store (own clock, health, fault stream) under ``workdir``."""
    path = Path(tempfile.mkdtemp(prefix="engine-", dir=workdir))
    return NVMStore(
        path,
        setup.device_model,
        concurrency=case.topology.n_cores,
        fault_plan=setup.fault,
    )


def _run_reference(case: GraphCase, setup: TrialSetup, root: int,
                   workdir: Path) -> BFSResult:
    return ReferenceBFS(case.csr).run(root)


def _run_topdown(case: GraphCase, setup: TrialSetup, root: int,
                 workdir: Path) -> BFSResult:
    engine = HybridBFS(case.forward, case.backward,
                       FixedPolicy(Direction.TOP_DOWN))
    return engine.run(root)


def _run_bottomup(case: GraphCase, setup: TrialSetup, root: int,
                  workdir: Path) -> BFSResult:
    engine = HybridBFS(case.forward, case.backward,
                       FixedPolicy(Direction.BOTTOM_UP))
    return engine.run(root)


def _run_hybrid(case: GraphCase, setup: TrialSetup, root: int,
                workdir: Path) -> BFSResult:
    engine = HybridBFS(case.forward, case.backward,
                       AlphaBetaPolicy(alpha=setup.alpha, beta=setup.beta))
    return engine.run(root)


def _run_parallel(case: GraphCase, setup: TrialSetup, root: int,
                  workdir: Path) -> BFSResult:
    engine = HybridBFS(case.forward, case.backward,
                       AlphaBetaPolicy(alpha=setup.alpha, beta=setup.beta),
                       n_workers=case.topology.n_nodes)
    try:
        return engine.run(root)
    finally:
        engine.close()


def _run_semi_external(case: GraphCase, setup: TrialSetup, root: int,
                       workdir: Path) -> BFSResult:
    engine = SemiExternalBFS.offload(
        forward=case.forward,
        backward=case.backward,
        policy=AlphaBetaPolicy(alpha=setup.alpha, beta=setup.beta),
        store=_fresh_store(case, setup, workdir),
    )
    return engine.run(root)


def _run_tiered(case: GraphCase, setup: TrialSetup, root: int,
                workdir: Path) -> BFSResult:
    # k pinned low so random graphs actually exercise the NVM tail path
    # (k >= max degree would leave the tails empty); tree equality vs
    # semi_external at *every* k is separately pinned by the hypothesis
    # property in tests/test_offload_store.py.
    engine = SemiExternalBFS.offload(
        forward=case.forward,
        backward=case.backward,
        policy=AlphaBetaPolicy(alpha=setup.alpha, beta=setup.beta),
        store=_fresh_store(case, setup, workdir),
        offload_k=2,
    )
    return engine.run(root)


def _run_fully_external(case: GraphCase, setup: TrialSetup, root: int,
                        workdir: Path) -> BFSResult:
    engine = FullyExternalBFS.offload(
        case.csr, _fresh_store(case, setup, workdir)
    )
    return engine.run(root)


def _pinned_graph(case: GraphCase, setup: TrialSetup,
                  workdir: Path) -> PinnedGraph:
    # The serving engine normally gets its graph from GraphCatalog, which
    # only builds Kronecker graphs — conformance (and shrunk repros) need
    # arbitrary edge lists, so pin the case's graph by hand.
    scenario = ScenarioConfig(
        name=f"conformance-{setup.device}",
        kind=ScenarioKind.SEMI_EXTERNAL,
        device=setup.device_model,
        alpha=setup.alpha,
        beta=setup.beta,
        topology=case.topology,
        fault_plan=setup.fault,
    )
    store = _fresh_store(case, setup, workdir)
    external = [
        offload_csr(shard, store, f"forward.node{k}")
        for k, shard in enumerate(case.forward.shards)
    ]
    return PinnedGraph(
        name="conformance",
        scenario=scenario,
        scale=0,
        edges=case.edges,
        forward=case.forward,
        backward=case.backward,
        store=store,
        external_shards=external,
        alpha=setup.alpha,
        beta=setup.beta,
        obs=NULL,
    )


def _run_batched(case: GraphCase, setup: TrialSetup, root: int,
                 workdir: Path) -> BFSResult:
    graph = _pinned_graph(case, setup, workdir)
    return BatchedBFS(graph).run_batch([int(root)])[0]


def _run_partitioned(case: GraphCase, setup: TrialSetup, root: int,
                     workdir: Path) -> BFSResult:
    # Three partitions so the conformance graphs (often tiny, sometimes
    # shrunk to a handful of vertices) exercise uneven and empty
    # partitions; byte-identity across partition *counts* is separately
    # pinned by tests/test_dist_bfs.py.
    from repro.dist import ContiguousPartitioner, DistributedBFS

    path = Path(tempfile.mkdtemp(prefix="engine-", dir=workdir))
    engine = DistributedBFS.build(
        case.csr,
        ContiguousPartitioner(3),
        AlphaBetaPolicy(alpha=setup.alpha, beta=setup.beta),
        path,
        setup.device_model,
        fault_plans=setup.fault,
        concurrency=case.topology.n_cores,
    )
    try:
        return engine.run(int(root))
    finally:
        engine.close()


def _run_dynamic(case: GraphCase, setup: TrialSetup, root: int,
                 workdir: Path) -> BFSResult:
    """Reach the case graph by repairing a seeded predecessor's tree.

    The serving layer's dynamic path, inverted for conformance: draw a
    mutation batch that separates the case graph G from a predecessor
    G' (the batch's inserts are edges of G, its deletes absent pairs),
    run the reference oracle on G', overlay-apply the batch and repair
    the old tree forward.  Differential byte-identity against every
    other engine on G is then exactly the claim the dynamic subsystem
    makes.  A seeded fraction of runs pins the repair threshold low to
    exercise the fallback-to-recompute path as well.
    """
    from dataclasses import replace

    from repro.graphmut import DeltaOverlay, draw_batch, repair_tree

    csr = case.csr
    n = csr.n_rows
    rng = np.random.default_rng([n, int(csr.adj.size), int(root), 20140519])
    # draw_batch mutates G forward; its inverse is the batch that led
    # *to* G, and applying it forward (un-inverted) yields G'.
    forward = draw_batch(csr, rng, n_inserts=int(rng.integers(0, 4)),
                         n_deletes=int(rng.integers(0, 4)))
    batch = forward.inverse()
    prev = DeltaOverlay(csr)
    prev.apply(forward)
    prev_csr = prev.to_csr()
    old = ReferenceBFS(prev_csr).run(root)
    overlay = DeltaOverlay(prev_csr)
    effective = overlay.apply(batch)
    threshold = 1.0 if rng.random() < 0.8 else 1.0 / max(n, 1)
    outcome = repair_tree(overlay.row, n, root, old.parent, effective,
                          max_dirty_frac=threshold)
    if outcome is None:  # dirty region over threshold: recompute on G
        return ReferenceBFS(overlay.to_csr()).run(root)
    visited = outcome.parent >= 0
    return replace(
        old,
        parent=outcome.parent,
        traversed_edges=int(csr.degrees()[visited].sum() // 2),
    )


# -- crash-recovery runners (the crash_resume relation's subjects) -------------


def _recoverable_semi_external(case: GraphCase, setup: TrialSetup, root: int,
                               workdir: Path) -> BFSResult:
    engine = SemiExternalBFS.offload(
        forward=case.forward,
        backward=case.backward,
        policy=AlphaBetaPolicy(alpha=setup.alpha, beta=setup.beta),
        store=_fresh_store(case, setup, workdir),
    )
    return RecoverableBFS(engine, checkpoint_every=1).run_with_recovery(root)


def _recoverable_fully_external(case: GraphCase, setup: TrialSetup, root: int,
                                workdir: Path) -> BFSResult:
    engine = FullyExternalBFS.offload(
        case.csr, _fresh_store(case, setup, workdir)
    )
    return RecoverableBFS(engine, checkpoint_every=1).run_with_recovery(root)


def _recoverable_batched(case: GraphCase, setup: TrialSetup, root: int,
                         workdir: Path) -> BFSResult:
    """Batched engine under checkpoint + crash + resume (serve-tier path)."""
    graph = _pinned_graph(case, setup, workdir)
    store = graph.store
    mgr = CheckpointManager(store, run_id="conformance", every=1, obs=NULL)

    def hook(queries, rounds: int) -> None:
        if any(q.active for q in queries):
            mgr.save([QuerySnapshot(
                key="conformance",
                root=q.root,
                level=q.level,
                direction=q.direction.value,
                prev_frontier=q.prev_frontier,
                visited_deg_sum=q.visited_deg_sum,
                parent=q.state.parent,
                frontier_queue=q.state.frontier_queue,
            ) for q in queries])
        injector = store.injector
        if injector is not None and injector.crash_due(
            store.clock.now(), rounds - 1
        ):
            if injector.plan.crash_torn:
                mgr.corrupt_last()
            raise ProcessCrashError("injected batch crash", level=rounds - 1)

    try:
        return BatchedBFS(graph).run_batch([int(root)], checkpointer=hook)[0]
    except ProcessCrashError:
        restored = load_run(mgr.dir)
        engine = BatchedBFS(graph)  # watchdog-style fresh engine
        if restored.epoch < 0:
            return engine.run_batch([int(root)])[0]
        mgr.adopt(restored)
        return engine.resume_batch(restored.queries, checkpointer=hook)[0]


for _spec in (
    EngineSpec("reference", _run_reference,
               description="plain top-down oracle over the unpartitioned CSR"),
    EngineSpec("topdown", _run_topdown,
               description="hybrid engine pinned top-down"),
    EngineSpec("bottomup", _run_bottomup,
               description="hybrid engine pinned bottom-up"),
    EngineSpec("hybrid", _run_hybrid, schedule_sensitive=True,
               description="direction-optimizing DRAM engine (§III-C)"),
    EngineSpec("parallel", _run_parallel, schedule_sensitive=True,
               description="hybrid engine with per-node worker threads"),
    EngineSpec("semi_external", _run_semi_external, external=True,
               schedule_sensitive=True,
               description="forward graph offloaded to NVM (§V-A)",
               recoverable=_recoverable_semi_external),
    EngineSpec("tiered", _run_tiered, external=True,
               schedule_sensitive=True,
               description="semi-external with the backward graph tiered "
                           "at k=2 edges/vertex in DRAM (§VI-E)"),
    EngineSpec("fully_external", _run_fully_external, external=True,
               description="whole CSR on NVM, top-down only",
               recoverable=_recoverable_fully_external),
    EngineSpec("batched", _run_batched, external=True,
               schedule_sensitive=True,
               description="serving layer's multi-source batched engine",
               recoverable=_recoverable_batched),
    EngineSpec("partitioned", _run_partitioned, external=True,
               schedule_sensitive=True,
               description="1D vertex-partitioned coordinator/worker "
                           "engine over three partitions"),
    EngineSpec("dynamic", _run_dynamic, dynamic=True,
               description="incremental repair from a seeded predecessor "
                           "graph (the serving layer's mutation path)"),
):
    register_engine(_spec)
