"""Counterexample shrinking: from a failing graph to a minimal one.

When a conformance check fails on a randomized graph the raw trial is a
terrible bug report — hundreds of edges, most irrelevant.  The shrinker
applies greedy delta debugging (Zeller & Hildebrandt's ddmin, restricted
to the "remove a chunk" move) over the edge columns, then compacts away
vertices no surviving edge touches:

1. try deleting contiguous edge windows, halving the window size each
   time the pass stops making progress, re-running the failing predicate
   after every candidate deletion and keeping any deletion that still
   fails;
2. renumber the vertices that remain (plus the root) densely, again
   keeping the compaction only if the failure survives relabeling.

The predicate is arbitrary — the harness passes "this differential check
still fails" or "this metamorphic relation still fails" — and the whole
procedure is deterministic, so the minimal counterexample lands in the
repro artifact exactly as ``--replay`` will regenerate it.

Every predicate call is counted and capped (``max_evals``): shrinking a
pathological case degrades to "fewer edges than we started with", never
to an unbounded loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList

__all__ = ["ShrinkOutcome", "shrink_case"]

FailingPredicate = Callable[[EdgeList, int], bool]


@dataclass(frozen=True)
class ShrinkOutcome:
    """The minimal failing input the shrinker converged on.

    ``evals`` counts predicate executions (the cost), ``steps`` counts
    accepted reductions (the progress); ``steps == 0`` means the
    original input was already minimal under the shrinker's moves.
    """

    edges: EdgeList
    root: int
    evals: int
    steps: int

    @property
    def n_edges(self) -> int:
        """Edge count of the shrunk graph."""
        return self.edges.endpoints.shape[1]


def shrink_case(edges: EdgeList, root: int, failing: FailingPredicate,
                max_evals: int = 400) -> ShrinkOutcome:
    """Greedily minimize ``(edges, root)`` while ``failing`` holds.

    Raises :class:`ConfigurationError` when the input does not fail to
    begin with — a shrinker fed a passing case is always a harness bug.
    """
    if max_evals < 1:
        raise ConfigurationError(f"max_evals must be >= 1: {max_evals}")
    evals = 1
    if not failing(edges, root):
        raise ConfigurationError(
            "shrink_case called with an input that does not fail"
        )
    steps = 0
    n = edges.n_vertices
    endpoints = edges.endpoints.copy()

    # Pass 1: ddmin over edge columns.
    chunk = max(endpoints.shape[1] // 2, 1)
    while chunk >= 1 and evals < max_evals:
        i = 0
        progressed = False
        while i < endpoints.shape[1] and evals < max_evals:
            candidate = np.delete(endpoints, np.s_[i:i + chunk], axis=1)
            evals += 1
            if failing(EdgeList(candidate, n), root):
                endpoints = candidate
                steps += 1
                progressed = True
                # the window now holds fresh edges; retry the same offset
            else:
                i += chunk
        if chunk == 1 and not progressed:
            break
        if not progressed:
            chunk //= 2

    # Pass 2: drop vertices nothing references (keeps the root).
    result_edges = EdgeList(endpoints, n)
    if evals < max_evals:
        used = np.union1d(np.unique(endpoints),
                          np.asarray([root], dtype=np.int64))
        if used.size < n:
            remap = np.searchsorted(used, endpoints)
            candidate = EdgeList(remap.astype(np.int64), int(used.size))
            new_root = int(np.searchsorted(used, root))
            evals += 1
            if failing(candidate, new_root):
                result_edges, root = candidate, new_root
                steps += 1

    return ShrinkOutcome(edges=result_edges, root=int(root),
                         evals=evals, steps=steps)
