"""Cross-engine conformance: differential + metamorphic correctness gate.

The paper's §IV validity argument — every engine and every schedule must
produce equivalent BFS answers — as an executable subsystem:

* :mod:`.registry` — every BFS engine behind one runner signature;
* :mod:`.oracles` — validity / distance / admissibility vs the reference;
* :mod:`.relations` — permutation, duplicate, schedule and fault
  invariances;
* :mod:`.shrinker` — delta-debugging failures to minimal counterexamples;
* :mod:`.artifact` — canonical, replayable JSON repro files;
* :mod:`.harness` — the randomized driver behind
  ``repro-bfs conformance``.
"""

from repro.conformance.artifact import SCHEMA, ReplayResult, ReproArtifact
from repro.conformance.harness import (
    ConformanceConfig,
    ConformanceFailure,
    ConformanceReport,
    run_conformance,
)
from repro.conformance.oracles import (
    DIFFERENTIAL_CHECKS,
    check_admissibility,
    check_distance,
    check_validity,
    differential_failures,
)
from repro.conformance.registry import (
    DEVICES,
    EngineSpec,
    GraphCase,
    TrialSetup,
    engine_names,
    get_engine,
    register_engine,
    run_engine,
    unregister_engine,
)
from repro.conformance.relations import (
    RELATIONS,
    MetamorphicRelation,
    get_relation,
    relation_names,
    relations_for,
)
from repro.conformance.shrinker import ShrinkOutcome, shrink_case

__all__ = [
    "SCHEMA",
    "ReplayResult",
    "ReproArtifact",
    "ConformanceConfig",
    "ConformanceFailure",
    "ConformanceReport",
    "run_conformance",
    "DIFFERENTIAL_CHECKS",
    "check_admissibility",
    "check_distance",
    "check_validity",
    "differential_failures",
    "DEVICES",
    "EngineSpec",
    "GraphCase",
    "TrialSetup",
    "engine_names",
    "get_engine",
    "register_engine",
    "run_engine",
    "unregister_engine",
    "RELATIONS",
    "MetamorphicRelation",
    "get_relation",
    "relation_names",
    "relations_for",
    "ShrinkOutcome",
    "shrink_case",
]
