"""The conformance harness: randomized cross-engine agreement testing.

One :func:`run_conformance` call draws ``seeds × trials`` randomized
(graph, scenario, root) triples, runs every registered engine on each,
and applies two families of checks:

* **differential** — tree validity, distance equality and parent
  admissibility against the reference oracle (:mod:`.oracles`);
* **metamorphic** — permutation, duplicate-edge, α/β-schedule and
  fault-vs-clean invariances (:mod:`.relations`), each on a rotating
  subset of the applicable engines so a trial stays cheap.

Any failure is shrunk to a minimal counterexample (:mod:`.shrinker`) and
persisted as a replayable artifact (:mod:`.artifact`).  Everything —
graph draws, scenario draws, relation seeds, engine rotation — derives
from ``numpy`` generators seeded by ``(seed, trial)``, so two runs of
the same config produce the same report, the same failures and the same
artifact bytes.

The graph draws deliberately include the shapes that historically break
BFS engines: Kronecker graphs (the paper's workload), uniform multigraph
noise with self-loops and duplicates, and fragmented graphs whose upper
vertex range is entirely isolated (so roots land in tiny components or
on isolated vertices).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph500 import EdgeList, generate_edges
from repro.graph500.edgelist import EdgeList as _EdgeList  # noqa: F401
from repro.numa.topology import NumaTopology
from repro.obs.schema import (
    M_CONF_ARTIFACTS,
    M_CONF_CHECKS,
    M_CONF_FAILURES,
    M_CONF_SHRINK_EVALS,
    M_CONF_TRIALS,
)
from repro.obs.session import NULL, Observability
from repro.semiext.faults import FaultPlan

from repro.conformance.artifact import ReproArtifact
from repro.conformance.oracles import differential_failures
from repro.conformance.registry import (
    EngineSpec,
    GraphCase,
    TrialSetup,
    engine_names,
    get_engine,
)
from repro.conformance.relations import (
    MetamorphicRelation,
    get_relation,
    relation_names,
)
from repro.conformance.shrinker import shrink_case

__all__ = [
    "ConformanceConfig",
    "ConformanceFailure",
    "ConformanceReport",
    "run_conformance",
]


@dataclass(frozen=True)
class ConformanceConfig:
    """What one conformance run covers.

    ``engines``/``relations`` empty means "all registered"; the
    reference engine is always included (it anchors the differential
    checks and must itself pass validity).
    """

    seeds: tuple[int, ...] = (7, 19, 101)
    trials: int = 3
    max_scale: int = 8
    engines: tuple[str, ...] = ()
    relations: tuple[str, ...] = ()
    artifact_dir: str | None = "conformance"
    shrink: bool = True
    max_shrink_evals: int = 300
    relation_engines: int = 2  # engines exercised per relation per trial

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("at least one seed is required")
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1: {self.trials}")
        if not 2 <= self.max_scale <= 16:
            raise ConfigurationError(
                f"max_scale must be in [2, 16]: {self.max_scale}"
            )
        for name in self.engines:
            get_engine(name)  # fail fast on typos
        for name in self.relations:
            get_relation(name)

    def resolved_engines(self) -> tuple[str, ...]:
        """The engine set to run, reference always first."""
        names = self.engines or engine_names()
        ordered = ["reference"] + [n for n in names if n != "reference"]
        return tuple(dict.fromkeys(ordered))

    def resolved_relations(self) -> tuple[str, ...]:
        """The metamorphic relation set to apply."""
        return self.relations or relation_names()


@dataclass(frozen=True)
class ConformanceFailure:
    """One confirmed disagreement, post-shrink."""

    seed: int
    trial: int
    engine: str
    check: str  # "differential:<oracle>" | "metamorphic:<relation>"
    message: str
    artifact: str | None  # path, when an artifact directory was configured

    def __str__(self) -> str:
        where = f" -> {self.artifact}" if self.artifact else ""
        return (f"[seed {self.seed} trial {self.trial}] {self.engine} "
                f"{self.check}: {self.message}{where}")


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of one :func:`run_conformance` call."""

    engines: tuple[str, ...]
    seeds: tuple[int, ...]
    trials: int
    checks: int
    failures: tuple[ConformanceFailure, ...]
    artifacts: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every check on every engine passed."""
        return not self.failures

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"conformance: {len(self.engines)} engines "
            f"({', '.join(self.engines)})",
            f"seeds {list(self.seeds)} x {self.trials // len(self.seeds)} "
            f"trials = {self.trials} trials, {self.checks} checks",
        ]
        if self.ok:
            lines.append("all checks passed")
        else:
            lines.append(f"{len(self.failures)} FAILURE(S):")
            lines += [f"  {f}" for f in self.failures]
        return "\n".join(lines)


def _draw_case(rng: np.random.Generator, max_scale: int) -> GraphCase:
    """One randomized graph: Kronecker, uniform noise, or fragmented."""
    scale = int(rng.integers(3, max_scale + 1))
    n = 1 << scale
    style = int(rng.integers(0, 3))
    if style == 0:  # the paper's workload
        endpoints = generate_edges(
            scale,
            edge_factor=int(rng.integers(2, 9)),
            seed=int(rng.integers(1 << 31)),
        )
    elif style == 1:  # uniform multigraph: duplicates and self-loops
        m = int(rng.integers(1, 4 * n))
        endpoints = np.stack([
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
        ]).astype(np.int64)
    else:  # fragmented: the upper half of the id range is isolated
        live = max(n // 2, 1)
        m = int(rng.integers(1, 2 * live + 1))
        endpoints = np.stack([
            rng.integers(0, live, size=m),
            rng.integers(0, live, size=m),
        ]).astype(np.int64)
    topology = NumaTopology(
        n_nodes=int(rng.choice([1, 2, 4])), cores_per_node=2
    )
    return GraphCase(EdgeList(endpoints, n), topology)


def _draw_setup(rng: np.random.Generator) -> TrialSetup:
    """One randomized scenario: device, schedule, maybe a fault plan."""
    fault = None
    if rng.random() < 0.4:
        fault = FaultPlan(
            seed=int(rng.integers(1 << 31)),
            error_rate=0.04,
            torn_rate=0.02,
            gc_rate=0.03,
        )
    return TrialSetup(
        device="pcie" if rng.random() < 0.5 else "ssd",
        alpha=float(rng.choice([2.0, 8.0, 64.0, 1e4])),
        beta=float(rng.choice([4.0, 32.0, 256.0, 1e5])),
        fault=fault,
    )


def _differential(spec: EngineSpec, case: GraphCase, setup: TrialSetup,
                  root: int, workdir: Path) -> list[tuple[str, str]]:
    """Run one engine and return its failing differential checks."""
    try:
        result = spec.run(case, setup, root, workdir)
    except Exception as exc:
        return [("crash", f"{type(exc).__name__}: {exc}")]
    ref = get_engine("reference").run(case, setup, root, workdir)
    return differential_failures(case.edges, ref.parent, result, root)


def _relation_fails(relation: MetamorphicRelation, spec: EngineSpec,
                    case: GraphCase, setup: TrialSetup, root: int,
                    seed: int, workdir: Path) -> str | None:
    try:
        return relation.check(spec, case, setup, root, seed, workdir)
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"


def run_conformance(
    config: ConformanceConfig,
    obs: Observability = NULL,
    workdir: str | Path | None = None,
) -> ConformanceReport:
    """Execute the harness and return a deterministic report.

    ``workdir`` hosts the per-engine NVM store files (scratch space, not
    part of the result); artifacts go to ``config.artifact_dir``.
    """
    if workdir is not None:
        return _run_in(config, obs, Path(workdir))
    with tempfile.TemporaryDirectory(prefix="repro-conf-") as scratch:
        return _run_in(config, obs, Path(scratch))


def _run_in(config: ConformanceConfig, obs: Observability,
            workdir: Path) -> ConformanceReport:
    engines = config.resolved_engines()
    relations = config.resolved_relations()
    failures: list[ConformanceFailure] = []
    artifacts: list[str] = []
    checks = trials = 0

    for seed in config.seeds:
        for trial in range(config.trials):
            rng = np.random.default_rng([seed, trial])
            case = _draw_case(rng, config.max_scale)
            setup = _draw_setup(rng)
            root = int(rng.integers(0, case.n_vertices))
            trials += 1
            obs.counter(M_CONF_TRIALS).inc()
            with obs.span("conformance.trial", seed=seed, trial=trial,
                          n=case.n_vertices, root=root):
                # -- differential sweep over every engine ------------------
                for name in engines:
                    spec = get_engine(name)
                    for check in ("validity", "distance", "admissibility"):
                        obs.counter(M_CONF_CHECKS, engine=name,
                                    check=check).inc()
                        checks += 1
                    for check, message in _differential(
                        spec, case, setup, root, workdir
                    ):
                        failures.append(_handle_failure(
                            config, obs, workdir, seed, trial, spec,
                            f"differential:{check}", message, case, setup,
                            root, int(rng.integers(1 << 31)), artifacts,
                        ))
                # -- metamorphic relations on rotating engine subsets ------
                for rel_name in relations:
                    relation = get_relation(rel_name)
                    applicable = [n for n in engines
                                  if relation.applies(get_engine(n))]
                    if not applicable:
                        continue
                    k = min(len(applicable), config.relation_engines)
                    chosen = rng.choice(applicable, size=k, replace=False)
                    for name in chosen:
                        spec = get_engine(str(name))
                        rel_seed = int(rng.integers(1 << 31))
                        obs.counter(M_CONF_CHECKS, engine=spec.name,
                                    check=rel_name).inc()
                        checks += 1
                        message = _relation_fails(
                            relation, spec, case, setup, root, rel_seed,
                            workdir,
                        )
                        if message is not None:
                            failures.append(_handle_failure(
                                config, obs, workdir, seed, trial, spec,
                                f"metamorphic:{rel_name}", message, case,
                                setup, root, rel_seed, artifacts,
                            ))

    return ConformanceReport(
        engines=engines,
        seeds=config.seeds,
        trials=trials,
        checks=checks,
        failures=tuple(failures),
        artifacts=tuple(artifacts),
    )


def _handle_failure(
    config: ConformanceConfig,
    obs: Observability,
    workdir: Path,
    seed: int,
    trial: int,
    spec: EngineSpec,
    check: str,
    message: str,
    case: GraphCase,
    setup: TrialSetup,
    root: int,
    check_seed: int,
    artifacts: list[str],
) -> ConformanceFailure:
    """Shrink a failure, persist its artifact, return the record."""
    obs.counter(M_CONF_FAILURES, engine=spec.name, check=check).inc()
    kind, _, name = check.partition(":")
    edges, shrunk_root = case.edges, root
    steps = evals = 0
    if config.shrink:
        predicate = _failing_predicate(spec, check, setup, check_seed,
                                       workdir, case.topology)
        with obs.span("conformance.shrink", engine=spec.name, check=check):
            outcome = shrink_case(case.edges, root, predicate,
                                  max_evals=config.max_shrink_evals)
        edges, shrunk_root = outcome.edges, outcome.root
        steps, evals = outcome.steps, outcome.evals
        obs.counter(M_CONF_SHRINK_EVALS).inc(evals)
    artifact = ReproArtifact.from_case(
        engine=spec.name,
        check=check,
        message=message,
        seed=check_seed,
        edges=edges,
        root=shrunk_root,
        setup=setup,
        shrink_steps=steps,
        shrink_evals=evals,
        original={
            "n_vertices": int(case.n_vertices),
            "n_edges": int(case.edges.endpoints.shape[1]),
            "root": int(root),
        },
    )
    path: str | None = None
    if config.artifact_dir is not None:
        path = str(artifact.write(config.artifact_dir))
        artifacts.append(path)
        obs.counter(M_CONF_ARTIFACTS, engine=spec.name).inc()
    return ConformanceFailure(
        seed=seed, trial=trial, engine=spec.name, check=check,
        message=message, artifact=path,
    )


def _failing_predicate(
    spec: EngineSpec,
    check: str,
    setup: TrialSetup,
    check_seed: int,
    workdir: Path,
    topology: NumaTopology,
) -> Callable[[EdgeList, int], bool]:
    """The shrinker's oracle: does this exact check still fail?"""
    kind, _, name = check.partition(":")

    def failing(edges: EdgeList, root: int) -> bool:
        candidate = GraphCase(edges, topology)
        if kind == "metamorphic":
            return _relation_fails(get_relation(name), spec, candidate,
                                   setup, root, check_seed,
                                   workdir) is not None
        observed = _differential(spec, candidate, setup, root, workdir)
        return any(c == name for c, _ in observed)

    return failing
