"""Replayable repro artifacts for conformance failures.

A failure that cannot be re-run is a flake report, not a bug report.
Every failure the harness keeps is serialized as one canonical JSON file
(``conformance/repro_*.json``) holding the *shrunk* graph, the root, the
drawn scenario, the seed of the check and what was observed — everything
``repro-bfs conformance --replay`` needs to re-execute the exact check
deterministically, with no reference back to the harness run that found
it.

Canonical means byte-stable: keys sorted, fixed indentation, a single
trailing newline, native Python scalars only.  ``load(path).to_json()``
reproduces the file byte for byte, which the tests pin — artifacts are
long-lived evidence and must diff cleanly in review.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.graph500.edgelist import EdgeList

from repro.conformance.oracles import differential_failures
from repro.conformance.registry import (
    EngineSpec,
    GraphCase,
    Runner,
    TrialSetup,
    get_engine,
    run_engine,
)
from repro.conformance.relations import get_relation

__all__ = ["SCHEMA", "ReplayResult", "ReproArtifact"]

#: Artifact schema tag; bump on incompatible layout changes.
SCHEMA = "repro.conformance/1"


@dataclass(frozen=True)
class ReplayResult:
    """What re-executing an artifact's check observed."""

    reproduced: bool
    message: str | None = None

    def __str__(self) -> str:
        if self.reproduced:
            return f"REPRODUCED: {self.message}"
        return "NOT REPRODUCED: the check passes on this input now"


@dataclass(frozen=True)
class ReproArtifact:
    """One shrunk, replayable conformance counterexample.

    ``check`` is ``"differential:<oracle>"`` or
    ``"metamorphic:<relation>"``; ``seed`` pins every random draw the
    check makes on replay.  ``original`` records the pre-shrink trial
    size so the report can say how much the shrinker earned.
    """

    engine: str
    check: str
    message: str
    seed: int
    root: int
    n_vertices: int
    edges_u: tuple[int, ...]
    edges_v: tuple[int, ...]
    setup: dict
    shrink_steps: int
    shrink_evals: int
    original: dict
    schema: str = SCHEMA

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_case(
        cls,
        engine: str,
        check: str,
        message: str,
        seed: int,
        edges: EdgeList,
        root: int,
        setup: TrialSetup,
        shrink_steps: int = 0,
        shrink_evals: int = 0,
        original: dict | None = None,
    ) -> "ReproArtifact":
        """Build an artifact from live harness state (numpy in, JSON out)."""
        u, v = edges.endpoints
        return cls(
            engine=engine,
            check=check,
            message=str(message),
            seed=int(seed),
            root=int(root),
            n_vertices=int(edges.n_vertices),
            edges_u=tuple(int(x) for x in u),
            edges_v=tuple(int(x) for x in v),
            setup=setup.describe(),
            shrink_steps=int(shrink_steps),
            shrink_evals=int(shrink_evals),
            original=dict(original or {}),
        )

    # -- (de)serialization -----------------------------------------------------

    def to_json(self) -> str:
        """Canonical byte-stable JSON (sorted keys, newline-terminated)."""
        payload = {
            "schema": self.schema,
            "engine": self.engine,
            "check": self.check,
            "message": self.message,
            "seed": self.seed,
            "root": self.root,
            "n_vertices": self.n_vertices,
            "edges_u": list(self.edges_u),
            "edges_v": list(self.edges_v),
            "setup": self.setup,
            "shrink_steps": self.shrink_steps,
            "shrink_evals": self.shrink_evals,
            "original": self.original,
        }
        return json.dumps(payload, sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ReproArtifact":
        """Parse an artifact, rejecting unknown schemas early."""
        data = json.loads(text)
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ConfigurationError(
                f"unsupported repro artifact schema {schema!r} "
                f"(expected {SCHEMA!r})"
            )
        return cls(
            engine=data["engine"],
            check=data["check"],
            message=data["message"],
            seed=int(data["seed"]),
            root=int(data["root"]),
            n_vertices=int(data["n_vertices"]),
            edges_u=tuple(int(x) for x in data["edges_u"]),
            edges_v=tuple(int(x) for x in data["edges_v"]),
            setup=data["setup"],
            shrink_steps=int(data["shrink_steps"]),
            shrink_evals=int(data["shrink_evals"]),
            original=data["original"],
        )

    @classmethod
    def load(cls, path: str | Path) -> "ReproArtifact":
        """Read an artifact file written by :meth:`write`."""
        return cls.from_json(Path(path).read_text())

    def filename(self) -> str:
        """Deterministic artifact name: engine, check, seed, root."""
        slug = self.check.replace(":", "-")
        return f"repro_{self.engine}_{slug}_s{self.seed}_r{self.root}.json"

    def write(self, outdir: str | Path) -> Path:
        """Write the canonical JSON under ``outdir``; returns the path."""
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        path = outdir / self.filename()
        path.write_text(self.to_json())
        return path

    # -- replay ----------------------------------------------------------------

    def edge_list(self) -> EdgeList:
        """The shrunk graph as a live :class:`EdgeList`."""
        endpoints = np.stack([
            np.asarray(self.edges_u, dtype=np.int64),
            np.asarray(self.edges_v, dtype=np.int64),
        ]).reshape(2, -1)
        return EdgeList(endpoints, self.n_vertices)

    def trial_setup(self) -> TrialSetup:
        """The recorded scenario as a live :class:`TrialSetup`."""
        return TrialSetup.from_description(self.setup)

    def _engine_spec(self, runner: Runner | None) -> EngineSpec:
        if runner is None:
            return get_engine(self.engine)
        try:
            return replace(get_engine(self.engine), run=runner)
        except ConfigurationError:
            # The failing engine was a test fixture never registered in
            # this process; replay it through the supplied runner.
            return EngineSpec(self.engine, runner,
                              external=True, schedule_sensitive=True,
                              description="replay override")

    def replay(self, runner: Runner | None = None,
               workdir: str | Path | None = None) -> ReplayResult:
        """Re-execute the recorded check on the recorded input.

        ``runner`` substitutes the engine implementation (used when the
        artifact came from an unregistered broken-engine fixture);
        ``workdir`` hosts any NVM store files, defaulting to a scratch
        directory.
        """
        if workdir is not None:
            return self._replay_in(runner, Path(workdir))
        with tempfile.TemporaryDirectory(prefix="repro-conf-") as scratch:
            return self._replay_in(runner, Path(scratch))

    def _replay_in(self, runner: Runner | None, workdir: Path) -> ReplayResult:
        kind, _, name = self.check.partition(":")
        if kind not in ("differential", "metamorphic") or not name:
            raise ConfigurationError(
                f"malformed check {self.check!r} "
                "(expected 'differential:<oracle>' or "
                "'metamorphic:<relation>')"
            )
        spec = self._engine_spec(runner)
        case = GraphCase(self.edge_list())
        setup = self.trial_setup()
        if kind == "metamorphic":
            relation = get_relation(name)
            try:
                message = relation.check(spec, case, setup, self.root,
                                         self.seed, workdir)
            except Exception as exc:  # a crash still reproduces the bug
                message = f"{type(exc).__name__}: {exc}"
            return ReplayResult(message is not None, message)
        # differential: run the engine against a fresh reference oracle.
        try:
            result = spec.run(case, setup, self.root, workdir)
        except Exception as exc:
            if name == "crash":
                return ReplayResult(True, f"{type(exc).__name__}: {exc}")
            return ReplayResult(True, f"engine raised instead of "
                                      f"answering: {type(exc).__name__}: {exc}")
        if name == "crash":
            return ReplayResult(False, None)
        ref = run_engine("reference", case, setup, self.root, workdir)
        failures = dict(differential_failures(case.edges, ref.parent,
                                              result, self.root))
        if name in failures:
            return ReplayResult(True, failures[name])
        return ReplayResult(False, None)
