"""Metamorphic relations: transformations that must not change the answer.

Where the differential oracles need a second implementation to disagree
with, a metamorphic relation only needs the engine itself: transform the
*input* in a way whose effect on the *output* is known exactly, run the
engine twice, and compare.

Seven relations, from the paper's §IV validity argument plus the
durability and dynamic-graph stories:

``permutation``
    BFS is label-blind: relabeling vertices by a permutation π maps the
    level array by π (``levels'[π(v)] == levels[v]``).
``duplicates``
    CSR construction deduplicates edges and drops self-loops, so
    appending duplicate edges and self-loops must leave the parent array
    bit-identical.
``schedule``
    α/β only move the top-down/bottom-up switch points; any schedule
    yields the same level array (trees may differ — bottom-up picks
    different parents).
``faults``
    A recoverable fault plan exercises retries, backoff and GC stalls on
    the NVM path, but the resilient reads deliver the same bytes: the
    parent array must match a clean run exactly — only iostats and the
    clock may differ.
``crash_resume``
    A seeded process crash at a mid-traversal level boundary, followed
    by a resume from the newest valid checkpoint (possibly torn, forcing
    the CRC fallback), must produce a parent array **bit-identical** to
    an uninterrupted run — the engines are deterministic and a
    checkpoint carries exactly their loop state.
``mutation_idempotence``
    Applying a mutation batch and then its inverse — each step repaired
    incrementally — must land back on the original tree bit-for-bit,
    and leave the delta overlay empty.
``mutation_commute``
    A batch of mutations touching distinct edges commutes: split it in
    two and repair through either application order; the final trees
    must be bit-identical.

Each relation is a pure function of ``(engine spec, case, setup, root,
seed)``; the seed pins every random draw so a failing relation replays
bit-for-bit from its repro artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph500.validate import compute_levels
from repro.semiext.faults import FaultPlan

from repro.conformance.registry import EngineSpec, GraphCase, TrialSetup

__all__ = [
    "MetamorphicRelation",
    "RELATIONS",
    "get_relation",
    "relation_names",
    "relations_for",
]

Checker = Callable[
    [EngineSpec, GraphCase, TrialSetup, int, int, Path], "str | None"
]


def _applies_to_all(spec: EngineSpec) -> bool:
    """Default applicability: the relation holds for every engine."""
    return True


@dataclass(frozen=True)
class MetamorphicRelation:
    """One named relation plus the engines it applies to."""

    name: str
    check: Checker = field(compare=False)
    applies: Callable[[EngineSpec], bool] = field(
        compare=False, default=_applies_to_all
    )
    description: str = ""


def _levels_or_error(parent: np.ndarray, root: int,
                     what: str) -> tuple[np.ndarray | None, str | None]:
    levels, err = compute_levels(np.asarray(parent), root)
    if err is not None:
        return None, f"{what} run produced an invalid tree: {err}"
    return levels, None


def _check_permutation(spec: EngineSpec, case: GraphCase, setup: TrialSetup,
                       root: int, seed: int, workdir: Path) -> str | None:
    """Relabel vertices; levels must relabel with them."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(case.n_vertices).astype(np.int64)
    base = spec.run(case, setup, root, workdir)
    permuted = spec.run(case.permuted(perm), setup, int(perm[root]), workdir)
    lv_base, err = _levels_or_error(base.parent, root, "base")
    if err is not None:
        return err
    lv_perm, err = _levels_or_error(permuted.parent, int(perm[root]),
                                    "permuted")
    if err is not None:
        return err
    if np.array_equal(lv_perm[perm], lv_base):
        return None
    v = int(np.flatnonzero(lv_perm[perm] != lv_base)[0])
    return (
        f"permutation broke level invariance at vertex {v} "
        f"(-> {int(perm[v])}): base level {int(lv_base[v])}, "
        f"permuted level {int(lv_perm[perm[v]])}"
    )


def _check_duplicates(spec: EngineSpec, case: GraphCase, setup: TrialSetup,
                      root: int, seed: int, workdir: Path) -> str | None:
    """Append duplicate edges and self-loops; parents must not move."""
    rng = np.random.default_rng(seed)
    u, v = case.edges.endpoints
    m = u.shape[0]
    if m:
        picks = rng.integers(0, m, size=min(m, 8))
        extra_u, extra_v = u[picks], v[picks]
    else:
        extra_u = extra_v = np.empty(0, dtype=np.int64)
    loops = rng.integers(0, case.n_vertices, size=4)
    augmented = case.with_extra_edges(
        np.concatenate([extra_u, loops]),
        np.concatenate([extra_v, loops]),
    )
    base = spec.run(case, setup, root, workdir)
    noisy = spec.run(augmented, setup, root, workdir)
    if np.array_equal(base.parent, noisy.parent):
        return None
    diff = int(np.flatnonzero(base.parent != noisy.parent)[0])
    return (
        f"duplicate edges / self-loops changed the tree at vertex {diff}: "
        f"parent {int(base.parent[diff])} -> {int(noisy.parent[diff])}"
    )


def _check_schedule(spec: EngineSpec, case: GraphCase, setup: TrialSetup,
                    root: int, seed: int, workdir: Path) -> str | None:
    """Two different α/β schedules must agree on every hop count."""
    rng = np.random.default_rng(seed)
    alt = replace(
        setup,
        alpha=float(rng.choice([1.0, 4.0, 64.0, 1e4])),
        beta=float(rng.choice([2.0, 16.0, 256.0, 1e5])),
    )
    base = spec.run(case, setup, root, workdir)
    other = spec.run(case, alt, root, workdir)
    lv_base, err = _levels_or_error(base.parent, root, "base-schedule")
    if err is not None:
        return err
    lv_other, err = _levels_or_error(other.parent, root, "alt-schedule")
    if err is not None:
        return err
    if np.array_equal(lv_base, lv_other):
        return None
    v = int(np.flatnonzero(lv_base != lv_other)[0])
    return (
        f"schedule (α={setup.alpha:g}, β={setup.beta:g}) vs "
        f"(α={alt.alpha:g}, β={alt.beta:g}) disagree at vertex {v}: "
        f"levels {int(lv_base[v])} vs {int(lv_other[v])}"
    )


def _check_faults(spec: EngineSpec, case: GraphCase, setup: TrialSetup,
                  root: int, seed: int, workdir: Path) -> str | None:
    """A recoverable fault plan must not change a single parent pointer."""
    rng = np.random.default_rng(seed)
    plan = FaultPlan(
        seed=int(rng.integers(1 << 31)),
        error_rate=0.04,
        torn_rate=0.02,
        gc_rate=0.03,
    )
    clean = spec.run(case, replace(setup, fault=None), root, workdir)
    faulty = spec.run(case, replace(setup, fault=plan), root, workdir)
    if np.array_equal(clean.parent, faulty.parent):
        return None
    v = int(np.flatnonzero(clean.parent != faulty.parent)[0])
    return (
        f"fault plan (seed {plan.seed}) changed the tree at vertex {v}: "
        f"parent {int(clean.parent[v])} -> {int(faulty.parent[v])}"
    )


def _check_crash_resume(spec: EngineSpec, case: GraphCase, setup: TrialSetup,
                        root: int, seed: int, workdir: Path) -> str | None:
    """Crash + checkpoint-resume must reproduce the uninterrupted tree."""
    rng = np.random.default_rng(seed)
    crash_level = int(rng.integers(1, 4))
    torn = bool(rng.integers(0, 2))
    plan = FaultPlan(
        seed=int(rng.integers(1 << 31)),
        crash_at_level=crash_level,
        crash_torn=torn,
    )
    clean = spec.run(case, replace(setup, fault=None), root, workdir)
    recovered = spec.recoverable(
        case, replace(setup, fault=plan), root, workdir
    )
    if np.array_equal(clean.parent, recovered.parent):
        return None
    v = int(np.flatnonzero(clean.parent != recovered.parent)[0])
    return (
        f"crash at level {crash_level} (torn={torn}) + resume changed the "
        f"tree at vertex {v}: parent {int(clean.parent[v])} -> "
        f"{int(recovered.parent[v])}"
    )


def _check_mutation_idempotence(spec: EngineSpec, case: GraphCase,
                                setup: TrialSetup, root: int, seed: int,
                                workdir: Path) -> str | None:
    """Batch + inverse batch, repaired, must restore the original tree."""
    from repro.graphmut import DeltaOverlay, draw_batch, repair_tree

    rng = np.random.default_rng(seed)
    csr = case.csr
    n = case.n_vertices
    batch = draw_batch(csr, rng, n_inserts=3, n_deletes=3)
    base = spec.run(case, setup, root, workdir)
    overlay = DeltaOverlay(csr)
    eff = overlay.apply(batch)
    fwd = repair_tree(overlay.row, n, root, base.parent, eff,
                      max_dirty_frac=1.0)
    if fwd is None:
        return "forward repair fell back at threshold 1.0"
    eff_inv = overlay.apply(batch.inverse())
    back = repair_tree(overlay.row, n, root, fwd.parent, eff_inv,
                       max_dirty_frac=1.0)
    if back is None:
        return "inverse repair fell back at threshold 1.0"
    if not overlay.is_empty:
        return (
            f"batch + inverse left {overlay.n_overlay_entries} overlay "
            f"entries instead of cancelling out"
        )
    if np.array_equal(back.parent, base.parent):
        return None
    v = int(np.flatnonzero(back.parent != base.parent)[0])
    return (
        f"insert-then-delete round trip moved the tree at vertex {v}: "
        f"parent {int(base.parent[v])} -> {int(back.parent[v])} "
        f"(batch {batch.to_dict()})"
    )


def _check_mutation_commute(spec: EngineSpec, case: GraphCase,
                            setup: TrialSetup, root: int, seed: int,
                            workdir: Path) -> str | None:
    """Distinct-edge mutations repair to the same tree in either order."""
    from repro.graphmut import DeltaOverlay, MutationBatch, draw_batch, \
        repair_tree

    rng = np.random.default_rng(seed)
    csr = case.csr
    n = case.n_vertices
    batch = draw_batch(csr, rng, n_inserts=4, n_deletes=4)
    muts = [("ins", e) for e in batch.inserts] + \
           [("del", e) for e in batch.deletes]
    if len(muts) < 2:
        return None  # nothing to reorder on this graph
    picks = rng.permutation(len(muts))
    cut = len(muts) // 2
    halves = []
    for chunk in (picks[:cut], picks[cut:]):
        ins = tuple(sorted(muts[i][1] for i in chunk if muts[i][0] == "ins"))
        dels = tuple(sorted(muts[i][1] for i in chunk if muts[i][0] == "del"))
        halves.append(MutationBatch(inserts=ins, deletes=dels))
    base = spec.run(case, setup, root, workdir)

    def repaired_through(order: list) -> "np.ndarray | str":
        overlay = DeltaOverlay(csr)
        parent = base.parent
        for sub in order:
            eff = overlay.apply(sub)
            out = repair_tree(overlay.row, n, root, parent, eff,
                              max_dirty_frac=1.0)
            if out is None:
                return "repair fell back at threshold 1.0"
            parent = out.parent
        return parent

    forward = repaired_through([halves[0], halves[1]])
    backward = repaired_through([halves[1], halves[0]])
    if isinstance(forward, str):
        return forward
    if isinstance(backward, str):
        return backward
    if np.array_equal(forward, backward):
        return None
    v = int(np.flatnonzero(forward != backward)[0])
    return (
        f"mutation sub-batch order changed the tree at vertex {v}: "
        f"parent {int(forward[v])} vs {int(backward[v])} "
        f"(batch {batch.to_dict()})"
    )


RELATIONS: dict[str, MetamorphicRelation] = {
    rel.name: rel
    for rel in (
        MetamorphicRelation(
            "permutation", _check_permutation,
            description="vertex relabeling permutes the level array",
        ),
        MetamorphicRelation(
            "duplicates", _check_duplicates,
            description="duplicate edges and self-loops are no-ops",
        ),
        MetamorphicRelation(
            "schedule", _check_schedule,
            applies=lambda spec: spec.schedule_sensitive,
            description="every α/β schedule yields the same levels",
        ),
        MetamorphicRelation(
            "faults", _check_faults,
            applies=lambda spec: spec.external,
            description="recoverable device faults leave answers intact",
        ),
        MetamorphicRelation(
            "crash_resume", _check_crash_resume,
            applies=lambda spec: spec.recoverable is not None,
            description="crash + checkpoint resume is bit-identical to "
                        "an uninterrupted run",
        ),
        MetamorphicRelation(
            "mutation_idempotence", _check_mutation_idempotence,
            applies=lambda spec: spec.dynamic,
            description="a mutation batch followed by its inverse "
                        "repairs back to the original tree",
        ),
        MetamorphicRelation(
            "mutation_commute", _check_mutation_commute,
            applies=lambda spec: spec.dynamic,
            description="distinct-edge mutation sub-batches repair to "
                        "the same tree in either order",
        ),
    )
}


def relation_names() -> tuple[str, ...]:
    """All relation names, declaration order."""
    return tuple(RELATIONS)


def get_relation(name: str) -> MetamorphicRelation:
    """Look up a relation by name."""
    try:
        return RELATIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"no metamorphic relation named {name!r} "
            f"(have {relation_names()})"
        ) from None


def relations_for(spec: EngineSpec,
                  names: tuple[str, ...] | None = None
                  ) -> tuple[MetamorphicRelation, ...]:
    """The relations applicable to one engine (optionally filtered)."""
    selected = relation_names() if not names else names
    return tuple(
        get_relation(n) for n in selected if get_relation(n).applies(spec)
    )
