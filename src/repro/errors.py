"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "ValidationError",
    "StorageError",
    "TransientIOError",
    "DeviceFailedError",
    "ChecksumError",
    "TruncatedFileError",
    "GraphFormatError",
    "ProcessCrashError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied.

    Raised eagerly at object-construction time (not lazily during a run) so
    that misconfigured experiments fail before any expensive work starts.
    """


class CapacityError(ReproError):
    """A memory placement does not fit the configured DRAM/NVM budget.

    Raised by :class:`repro.semiext.hierarchy.MemoryHierarchy` when an
    allocation would exceed the capacity of the tier it was pinned to, and by
    :class:`repro.core.offload.OffloadPlanner` when no feasible placement
    exists at all.
    """


class ValidationError(ReproError):
    """A BFS result failed Graph500 validation.

    Carries the human-readable reason of the *first* violated rule; the
    validator also exposes a non-raising API returning all violations.
    """


class StorageError(ReproError):
    """A semi-external storage operation failed (bad offset, closed file...)."""


class TransientIOError(StorageError):
    """A device read failed after exhausting its retry budget.

    Raised by the resilient read path of :class:`repro.semiext.storage.NVMStore`
    when a single request keeps failing transiently (injected EIO, timeout)
    beyond :class:`repro.semiext.faults.RetryPolicy.max_retries`.  The time
    spent on the failed attempts and their backoff waits has already been
    charged to the simulated clock.
    """


class DeviceFailedError(StorageError):
    """The NVM device is gone (hard failure or open circuit breaker).

    Unlike :class:`TransientIOError` this is not worth retrying: the
    engines react by falling back to bottom-up-only traversal on the
    in-DRAM backward graph (degraded mode), which completes every BFS
    correctly with zero further NVM reads.
    """


class ChecksumError(StorageError):
    """Data read from the device failed per-chunk checksum verification.

    Transient mismatches (torn reads) are retried and never surface; this
    error means the mismatch persisted across the whole retry budget —
    i.e. the backing file itself is corrupt.
    """


class TruncatedFileError(StorageError):
    """A backing file shrank (or vanished) between runs.

    Raised by :meth:`repro.semiext.storage.ExternalArray.reopen` when the
    on-disk file no longer holds the array it was created with — the
    durable anchor of a semi-external run is gone, so resuming against it
    would read garbage.  Carries the path and the expected/actual sizes
    in its message.
    """


class GraphFormatError(ReproError):
    """An edge list or CSR structure is malformed (e.g. non-monotone index)."""


class ProcessCrashError(ReproError):
    """The simulated process died mid-run (seeded crash injection).

    Deliberately *not* a :class:`StorageError`: the engines' degraded-mode
    handling absorbs device failures, but a process crash must propagate
    all the way out of the engine so the recovery layer (or the serve
    tier's watchdog) can restart from the last checkpoint.  Carries the
    simulated time and BFS level at which the crash fired.
    """

    def __init__(self, message: str, *, crashed_at_s: float = 0.0,
                 level: int | None = None) -> None:
        super().__init__(message)
        self.crashed_at_s = float(crashed_at_s)
        self.level = level
