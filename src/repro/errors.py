"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "ValidationError",
    "StorageError",
    "GraphFormatError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied.

    Raised eagerly at object-construction time (not lazily during a run) so
    that misconfigured experiments fail before any expensive work starts.
    """


class CapacityError(ReproError):
    """A memory placement does not fit the configured DRAM/NVM budget.

    Raised by :class:`repro.semiext.hierarchy.MemoryHierarchy` when an
    allocation would exceed the capacity of the tier it was pinned to, and by
    :class:`repro.core.offload.OffloadPlanner` when no feasible placement
    exists at all.
    """


class ValidationError(ReproError):
    """A BFS result failed Graph500 validation.

    Carries the human-readable reason of the *first* violated rule; the
    validator also exposes a non-raising API returning all violations.
    """


class StorageError(ReproError):
    """A semi-external storage operation failed (bad offset, closed file...)."""


class GraphFormatError(ReproError):
    """An edge list or CSR structure is malformed (e.g. non-monotone index)."""
