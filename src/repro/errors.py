"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "ValidationError",
    "StorageError",
    "TransientIOError",
    "DeviceFailedError",
    "ChecksumError",
    "GraphFormatError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied.

    Raised eagerly at object-construction time (not lazily during a run) so
    that misconfigured experiments fail before any expensive work starts.
    """


class CapacityError(ReproError):
    """A memory placement does not fit the configured DRAM/NVM budget.

    Raised by :class:`repro.semiext.hierarchy.MemoryHierarchy` when an
    allocation would exceed the capacity of the tier it was pinned to, and by
    :class:`repro.core.offload.OffloadPlanner` when no feasible placement
    exists at all.
    """


class ValidationError(ReproError):
    """A BFS result failed Graph500 validation.

    Carries the human-readable reason of the *first* violated rule; the
    validator also exposes a non-raising API returning all violations.
    """


class StorageError(ReproError):
    """A semi-external storage operation failed (bad offset, closed file...)."""


class TransientIOError(StorageError):
    """A device read failed after exhausting its retry budget.

    Raised by the resilient read path of :class:`repro.semiext.storage.NVMStore`
    when a single request keeps failing transiently (injected EIO, timeout)
    beyond :class:`repro.semiext.faults.RetryPolicy.max_retries`.  The time
    spent on the failed attempts and their backoff waits has already been
    charged to the simulated clock.
    """


class DeviceFailedError(StorageError):
    """The NVM device is gone (hard failure or open circuit breaker).

    Unlike :class:`TransientIOError` this is not worth retrying: the
    engines react by falling back to bottom-up-only traversal on the
    in-DRAM backward graph (degraded mode), which completes every BFS
    correctly with zero further NVM reads.
    """


class ChecksumError(StorageError):
    """Data read from the device failed per-chunk checksum verification.

    Transient mismatches (torn reads) are retried and never surface; this
    error means the mismatch persisted across the whole retry budget —
    i.e. the backing file itself is corrupt.
    """


class GraphFormatError(ReproError):
    """An edge list or CSR structure is malformed (e.g. non-monotone index)."""
