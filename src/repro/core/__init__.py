"""End-to-end reproduction pipeline.

Ties every substrate together into the paper's four-step flow (§V-A):
edge-list generation (offloaded to NVM), graph construction (forward graph
offloaded, backward graph in DRAM), 64 × (BFS + validation).  Scenario
presets mirror Table I; the offload planner proves placements against the
DRAM/NVM budgets before any data moves.
"""

from repro.core.config import ScenarioConfig, ScenarioKind
from repro.core.experiment import EvaluationRunner
from repro.core.offload import OffloadPlan, OffloadPlanner
from repro.core.pipeline import PipelineResult, run_graph500
from repro.core.scenarios import (
    DRAM_ONLY,
    DRAM_PCIE_FLASH,
    DRAM_SSD,
    PAPER_SCENARIOS,
)

__all__ = [
    "ScenarioConfig",
    "EvaluationRunner",
    "ScenarioKind",
    "OffloadPlan",
    "OffloadPlanner",
    "PipelineResult",
    "run_graph500",
    "DRAM_ONLY",
    "DRAM_PCIE_FLASH",
    "DRAM_SSD",
    "PAPER_SCENARIOS",
]
