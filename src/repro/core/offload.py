"""Offload planning: prove a placement before moving data.

The paper's placement is fixed by design (§V-A): edge list and forward
graph on NVM, backward graph and BFS status data in DRAM.  The planner's
job is to *verify* that this placement fits the scenario's budgets — and,
for DRAM-only scenarios, that everything fits DRAM — returning an
:class:`OffloadPlan` the pipeline executes, or raising
:class:`~repro.errors.CapacityError` with the exact shortfall.

The planner also answers the paper's capacity headline ("reducing DRAM
size by half"): :meth:`OffloadPlanner.min_dram_bytes` reports the smallest
DRAM that still runs each scenario kind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ScenarioConfig
from repro.errors import CapacityError
from repro.semiext.hierarchy import MemoryHierarchy, Tier
from repro.semiext.storage import NVMStore

__all__ = ["StructureSizes", "OffloadPlan", "OffloadPlanner"]


@dataclass(frozen=True)
class StructureSizes:
    """Byte counts of the four structures to place."""

    edge_list: int
    forward: int
    backward: int
    status: int

    @property
    def working_set(self) -> int:
        """Forward + backward + status (what BFS touches)."""
        return self.forward + self.backward + self.status

    @property
    def total(self) -> int:
        """Everything including the edge list."""
        return self.working_set + self.edge_list


@dataclass(frozen=True)
class OffloadPlan:
    """A verified placement: structure name → tier."""

    placements: dict[str, Tier]
    dram_budget: int
    dram_used: int
    nvm_used: int

    @property
    def dram_saved_fraction(self) -> float:
        """Share of the total footprint kept *off* DRAM."""
        total = self.dram_used + self.nvm_used
        if total == 0:
            return 0.0
        return self.nvm_used / total

    def tier_of(self, structure: str) -> Tier:
        """Placement of one structure."""
        return self.placements[structure]


class OffloadPlanner:
    """Derives and verifies the placement for one scenario."""

    def __init__(self, scenario: ScenarioConfig) -> None:
        self.scenario = scenario

    def placement_policy(self) -> dict[str, Tier]:
        """The paper's static placement for this scenario kind."""
        if self.scenario.is_semi_external:
            return {
                "edge_list": Tier.NVM,
                "forward": Tier.NVM,
                "backward": Tier.DRAM,
                "status": Tier.DRAM,
            }
        return {
            "edge_list": Tier.DRAM,
            "forward": Tier.DRAM,
            "backward": Tier.DRAM,
            "status": Tier.DRAM,
        }

    def plan(
        self, sizes: StructureSizes, store: NVMStore | None = None
    ) -> OffloadPlan:
        """Verify the placement against the scenario's budgets.

        Raises
        ------
        CapacityError
            When a structure does not fit its tier — e.g. running the
            semi-external placement without a device, or a DRAM-only
            scenario whose DRAM is smaller than the working set (the
            situation that motivates the paper).
        """
        policy = self.placement_policy()
        by_name = {
            "edge_list": sizes.edge_list,
            "forward": sizes.forward,
            "backward": sizes.backward,
            "status": sizes.status,
        }
        # Relative budgets scale against what the policy wants resident
        # (the paper's 128 GB / 88.3 GB and 64 GB / 48.2 GB ratios); an
        # absolute dram_capacity_bytes is taken as-is.
        dram_demand = sum(
            nbytes for name, nbytes in by_name.items()
            if policy[name] is Tier.DRAM
        )
        budget = self.scenario.dram_budget(dram_demand)
        hierarchy = MemoryHierarchy(dram_capacity=budget, nvm_store=store)
        for name, tier in policy.items():
            if tier is Tier.NVM and store is None:
                raise CapacityError(
                    f"scenario {self.scenario.name!r} offloads {name!r} "
                    f"but no NVM store was provided"
                )
            hierarchy.reserve(name, by_name[name], tier)
        return OffloadPlan(
            placements=policy,
            dram_budget=budget,
            dram_used=hierarchy.used(Tier.DRAM),
            nvm_used=hierarchy.used(Tier.NVM),
        )

    def min_dram_bytes(self, sizes: StructureSizes) -> int:
        """Smallest DRAM that runs this scenario's placement."""
        policy = self.placement_policy()
        by_name = {
            "edge_list": sizes.edge_list,
            "forward": sizes.forward,
            "backward": sizes.backward,
            "status": sizes.status,
        }
        return sum(
            nbytes for name, nbytes in by_name.items()
            if policy[name] is Tier.DRAM
        )
