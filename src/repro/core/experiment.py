"""One-shot reproduction runner: regenerate the paper's evaluation.

:class:`EvaluationRunner` executes every experiment of DESIGN.md §4 on a
single graph and writes a machine-readable ``report.json`` plus a
human-readable ``report.md``, so a full reproduction is::

    repro-bfs reproduce --scale 15 --out results/

or programmatically::

    from repro.core.experiment import EvaluationRunner
    report = EvaluationRunner(scale=15, seed=1).run_all()

The runner shares its building blocks with the pytest benchmarks (the
analysis modules) but is independent of pytest — it is the entry point a
downstream user scripts against.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.analysis import (
    alpha_beta_sweep,
    audit_locality,
    backward_offload_sweep,
    compare_scenarios,
    degradation_by_degree,
    scaled_alpha_grid,
    schedule_summary,
    summarize_iostats,
    traversal_split,
)
from repro.analysis.perfcompare import build_engine
from repro.bfs import AlphaBetaPolicy, FullyExternalBFS, HybridBFS, SemiExternalBFS
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.errors import ConfigurationError
from repro.graph500 import (
    EdgeList,
    Graph500Driver,
    generate_edges,
    sample_roots,
)
from repro.core.scenarios import PAPER_SCENARIOS
from repro.numa import NumaTopology
from repro.perfmodel import (
    DramCostModel,
    GraphSizeModel,
    MachinePowerModel,
    projected_degradation,
)
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD
from repro.util.units import GIB

__all__ = ["EvaluationRunner"]


@dataclass
class EvaluationRunner:
    """Runs the full per-figure evaluation at one SCALE.

    Parameters
    ----------
    scale / edge_factor / seed / n_roots:
        Workload configuration (paper: SCALE 27, ef 16, 64 roots).
    workdir:
        Directory for NVM backing files; a temporary directory when
        omitted.
    """

    scale: int = 15
    edge_factor: int = 16
    seed: int = 20140519
    n_roots: int = 8
    workdir: str | Path | None = None
    _report: dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.scale < 8:
            raise ConfigurationError(
                f"scale must be >= 8 for a meaningful evaluation: {self.scale}"
            )
        self._tmp: tempfile.TemporaryDirectory | None = None
        if self.workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-eval-")
            self.workdir = self._tmp.name
        self.workdir = Path(self.workdir)
        n = 1 << self.scale
        self.edges = EdgeList(
            generate_edges(self.scale, self.edge_factor, seed=self.seed), n
        )
        self.csr = build_csr(self.edges)
        self.topology = NumaTopology(4, 12)
        self.forward = ForwardGraph(self.csr, self.topology)
        self.backward = BackwardGraph(self.csr, self.topology)
        self.driver = Graph500Driver(
            self.edges, n_roots=self.n_roots, seed=self.seed, validate=False
        )

    # -- individual experiments -------------------------------------------------

    def table2_sizes(self) -> dict[str, float]:
        """Table II / Figure 3 anchors (exact model, in GiB)."""
        model = GraphSizeModel()
        b27, b31 = model.breakdown(27), model.breakdown(31)
        return {
            "scale27_forward_gib": b27.forward / GIB,
            "scale27_backward_gib": b27.backward / GIB,
            "scale27_status_gib": b27.status / GIB,
            "scale27_working_set_gib": b27.working_set / GIB,
            "scale31_total_gib": b31.graph_total / GIB,
        }

    def fig7_sweeps(self) -> dict[str, Any]:
        """α×β sweeps per scenario (Figure 7)."""
        out = {}
        for scenario in PAPER_SCENARIOS:
            result = alpha_beta_sweep(
                lambda a, b, s=scenario: build_engine(
                    s, self.forward, self.backward, a, b, self.workdir
                ),
                self.edges,
                scenario.name,
                n_roots=self.n_roots,
                seed=self.seed,
            )
            a, b, teps = result.best()
            out[scenario.name] = {
                "grid_gteps": (result.teps / 1e9).round(4).tolist(),
                "best": {"alpha": a, "beta": b, "gteps": teps / 1e9},
            }
        return out

    def fig8_comparison(self) -> dict[str, Any]:
        """Scenario/baseline comparison (Figure 8)."""
        alphas = scaled_alpha_grid(self.edges.n_vertices)
        points = tuple((a, f * a) for a in alphas for f in (0.1, 1.0, 10.0))
        series = compare_scenarios(
            self.edges, self.csr, self.forward, self.backward,
            PAPER_SCENARIOS, points, self.workdir,
            n_roots=self.n_roots, seed=self.seed,
        )
        best = {s.name: s.best() for s in series}
        dram = best["DRAM-only"][2]
        return {
            "best_gteps": {k: v[2] / 1e9 for k, v in best.items()},
            "degradation": {
                name: 1 - best[name][2] / dram
                for name in ("DRAM+PCIeFlash", "DRAM+SSD")
            },
        }

    def fig10_traversal(self) -> dict[str, float]:
        """Top-down traffic share per α (Figure 10)."""
        out = {}
        for alpha in scaled_alpha_grid(self.edges.n_vertices):
            engine = HybridBFS(
                self.forward, self.backward,
                AlphaBetaPolicy(alpha, alpha), DramCostModel(),
            )
            results = [
                engine.run(int(r)) for r in self.driver.roots[: min(4, self.n_roots)]
            ]
            out[f"alpha={alpha:.4g}"] = traversal_split(results).top_down_fraction
        return out

    def fig11_degradation(self) -> dict[str, Any]:
        """Per-level degradation vs degree (Figure 11) + scale projection."""
        alpha = 30.0 * self.edges.n_vertices / (1 << 15)
        root = int(self.driver.roots[0])
        dram = HybridBFS(
            self.forward, self.backward,
            AlphaBetaPolicy(alpha, alpha), DramCostModel(),
        ).run(root)
        out: dict[str, Any] = {}
        for name, device in (("PCIeFlash", PCIE_FLASH), ("SSD", SATA_SSD)):
            store = NVMStore(
                self.workdir / f"fig11-{name}", device,
                concurrency=self.topology.n_cores,
            )
            nvm = SemiExternalBFS.offload(
                self.forward, self.backward,
                AlphaBetaPolicy(alpha, alpha), store,
                cost_model=DramCostModel(),
            ).run(root)
            points = degradation_by_degree(dram, nvm)
            out[name] = {
                "points": [(p.avg_degree, p.ratio) for p in points],
                "projected_degradation_scale27": projected_degradation(
                    dram, nvm, self.scale, 27
                ),
            }
        return out

    def fig12_13_iostat(self) -> dict[str, Any]:
        """avgqu-sz / avgrq-sz per device (Figures 12–13)."""
        alpha = 30.0 * self.edges.n_vertices / (1 << 15)
        out = {}
        for name, device in (("PCIeFlash", PCIE_FLASH), ("SSD", SATA_SSD)):
            store = NVMStore(
                self.workdir / f"io-{name}", device,
                concurrency=self.topology.n_cores,
            )
            engine = SemiExternalBFS.offload(
                self.forward, self.backward,
                AlphaBetaPolicy(alpha, alpha), store,
                cost_model=DramCostModel(),
            )
            self.driver.run(engine)
            s = summarize_iostats(store.iostats)
            out[name] = {
                "avgqu_sz": s.avgqu_sz,
                "avgrq_sz": s.avgrq_sz,
                "requests": s.total_requests,
            }
        return out

    def fig14_offload(self) -> list[dict[str, Any]]:
        """Backward-graph offload sweep (Figure 14), both strategies."""
        roots = sample_roots(self.csr.degrees(), n_roots=2, seed=self.seed)
        points = backward_offload_sweep(
            self.forward, self.backward, PCIE_FLASH,
            self.workdir / "fig14", roots,
            ks=(2, 8, 32),
            alpha=self.edges.n_vertices / 128,
            beta=self.edges.n_vertices / 128,
        )
        return [
            {
                "strategy": p.strategy,
                "k": p.k,
                "dram_reduction": p.dram_reduction,
                "nvm_access_ratio": p.nvm_access_ratio,
            }
            for p in points
        ]

    def related_and_extras(self) -> dict[str, Any]:
        """§VII Pearce ladder, §VI-C schedule, locality audit, Green."""
        alpha = 244.0 * self.edges.n_vertices / (1 << 15)
        root = int(self.driver.roots[0])
        store = NVMStore(
            self.workdir / "pearce", PCIE_FLASH,
            concurrency=self.topology.n_cores,
        )
        full = FullyExternalBFS.offload(
            self.csr, store, cost_model=DramCostModel()
        ).run(root)
        hybrid = HybridBFS(
            self.forward, self.backward,
            AlphaBetaPolicy(alpha, alpha), DramCostModel(),
        ).run(root)
        schedule = schedule_summary(
            HybridBFS(
                self.forward, self.backward,
                AlphaBetaPolicy(alpha / 8, alpha / 8), DramCostModel(),
            ).run(root)
        )
        audit = audit_locality(
            self.csr, self.forward, self.backward, self.topology
        )
        green = MachinePowerModel.green_graph500_submission()
        return {
            "pearce_fully_external_gteps": full.teps(modeled=True) / 1e9,
            "hybrid_gteps": hybrid.teps(modeled=True) / 1e9,
            "schedule": schedule.schedule,
            "schedule_head_degree": schedule.head_avg_degree,
            "schedule_tail_degree": schedule.tail_avg_degree,
            "locality_netal_remote": audit.netal_remote_fraction,
            "locality_naive_remote": audit.naive_remote_fraction,
            "green_mteps_per_watt_at_4_22_gteps": green.mteps_per_watt(4.22e9),
        }

    # -- orchestration ------------------------------------------------------------

    _EXPERIMENTS: tuple[tuple[str, str], ...] = (
        ("table2_fig3_sizes", "table2_sizes"),
        ("fig7_alpha_beta", "fig7_sweeps"),
        ("fig8_comparison", "fig8_comparison"),
        ("fig10_traversal_split", "fig10_traversal"),
        ("fig11_degradation", "fig11_degradation"),
        ("fig12_13_iostat", "fig12_13_iostat"),
        ("fig14_backward_offload", "fig14_offload"),
        ("related_and_extras", "related_and_extras"),
    )

    def run_all(
        self, progress: Callable[[str], None] | None = None
    ) -> dict[str, Any]:
        """Execute every experiment; returns (and caches) the report."""
        report: dict[str, Any] = {
            "config": {
                "scale": self.scale,
                "edge_factor": self.edge_factor,
                "seed": self.seed,
                "n_roots": self.n_roots,
            }
        }
        for key, method in self._EXPERIMENTS:
            if progress is not None:
                progress(key)
            report[key] = getattr(self, method)()
        self._report = report
        return report

    def write(self, out_dir: str | Path) -> tuple[Path, Path]:
        """Write ``report.json`` and ``report.md``; returns their paths."""
        if not self._report:
            self.run_all()
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        json_path = out / "report.json"
        json_path.write_text(json.dumps(self._report, indent=2, default=float))
        md_path = out / "report.md"
        md_path.write_text(self._render_markdown())
        return json_path, md_path

    def _render_markdown(self) -> str:
        r = self._report
        cfg = r["config"]
        lines = [
            "# Reproduction report",
            "",
            f"SCALE {cfg['scale']}, edge factor {cfg['edge_factor']}, "
            f"seed {cfg['seed']}, {cfg['n_roots']} roots per point.",
            "",
            "## Capacity (Table II / Figure 3)",
            "",
        ]
        sizes = r["table2_fig3_sizes"]
        lines += [
            f"- SCALE 27 forward/backward/status: "
            f"{sizes['scale27_forward_gib']:.1f} / "
            f"{sizes['scale27_backward_gib']:.1f} / "
            f"{sizes['scale27_status_gib']:.1f} GB "
            "(paper: 40.1 / 33.1 / 15.1)",
            f"- SCALE 31 graph total: {sizes['scale31_total_gib'] / 1024:.2f} TB "
            "(paper: 1.5 TB)",
            "",
            "## Performance (Figures 7–8)",
            "",
        ]
        for name, data in r["fig7_alpha_beta"].items():
            b = data["best"]
            lines.append(
                f"- {name}: best {b['gteps']:.2f} GTEPS at "
                f"alpha={b['alpha']:.3g}, beta={b['beta']:.3g}"
            )
        deg = r["fig8_comparison"]["degradation"]
        lines += [
            f"- degradation vs DRAM-only: PCIeFlash "
            f"{deg['DRAM+PCIeFlash']:.1%}, SSD {deg['DRAM+SSD']:.1%} "
            "(paper at SCALE 27: 19.18 % / 47.1 %)",
            "",
            "## Mechanisms (Figures 10–14)",
            "",
        ]
        for label, share in r["fig10_traversal_split"].items():
            lines.append(f"- top-down traffic share at {label}: {share:.1%}")
        for name, data in r["fig11_degradation"].items():
            ratios = [p[1] for p in data["points"]]
            lines.append(
                f"- {name} top-down degradation span: "
                f"{min(ratios):.1f}x – {max(ratios):.1f}x; projected SCALE-27 "
                f"degradation {data['projected_degradation_scale27']:.1%}"
            )
        io = r["fig12_13_iostat"]
        lines.append(
            f"- iostat: avgqu-sz {io['PCIeFlash']['avgqu_sz']:.1f} / "
            f"{io['SSD']['avgqu_sz']:.1f}, avgrq-sz "
            f"{io['PCIeFlash']['avgrq_sz']:.1f} sectors "
            "(paper: 36.1 / 56.1; 22.6 sectors)"
        )
        extras = r["related_and_extras"]
        lines += [
            "",
            "## Related work and extras",
            "",
            f"- fully-external (Pearce-style): "
            f"{extras['pearce_fully_external_gteps']:.3f} GTEPS vs hybrid "
            f"{extras['hybrid_gteps']:.2f} GTEPS",
            f"- schedule {extras['schedule']}: head degree "
            f"{extras['schedule_head_degree']:.1f}, tail degree "
            f"{extras['schedule_tail_degree']:.1f} (paper: 11182.9 vs 1)",
            f"- NUMA locality: {extras['locality_netal_remote']:.1%} remote "
            f"(NETAL) vs {extras['locality_naive_remote']:.1%} (naive)",
            f"- Green Graph500: "
            f"{extras['green_mteps_per_watt_at_4_22_gteps']:.2f} MTEPS/W "
            "(paper: 4.35)",
            "",
        ]
        return "\n".join(lines)

    def close(self) -> None:
        """Remove the temporary workdir, if one was created."""
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
