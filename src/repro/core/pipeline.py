"""The end-to-end Graph500 pipeline with graph offloading (paper §V-A).

:func:`run_graph500` executes the paper's four steps for one scenario:

1. **Edge list generation** — Kronecker edges on "DRAM", then offloaded to
   the scenario's NVM store (semi-external scenarios).
2. **Graph construction** — the forward graph is built by reading the edge
   list back from NVM (a charged sequential scan) and offloaded shard by
   shard; the backward graph is built the same way and kept in DRAM.  The
   offload planner verifies every placement against the DRAM budget first.
3. **BFS** — the configured hybrid engine runs from 64 sampled roots.
4. **Validation** — every tree is validated against the edge list.

Construction-phase I/O is tracked but excluded from the BFS iostat report,
matching the paper's isolation of CSR and edge-list devices (§VI-D).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, replace
from pathlib import Path

from repro.bfs.hybrid import HybridBFS
from repro.bfs.policies import AlphaBetaPolicy, TieredKPolicy
from repro.bfs.semi_external import SemiExternalBFS
from repro.core.config import ScenarioConfig
from repro.core.offload import OffloadPlan, OffloadPlanner, StructureSizes
from repro.csr.builder import build_csr
from repro.csr.partition import BackwardGraph, ForwardGraph
from repro.errors import ConfigurationError
from repro.graph500.driver import BenchmarkOutput, Graph500Driver
from repro.graph500.edgelist import EdgeList
from repro.graph500.io import pack_edges_48, unpack_edges_48
from repro.graph500.kronecker import generate_edges
from repro.obs.schema import (
    M_PIPE_DRAM_BUDGET,
    M_PIPE_DRAM_USED,
    M_PIPE_PAGE_CACHE,
)
from repro.obs.session import NULL, Observability
from repro.semiext.faults import DeviceHealthMonitor, ResilienceStats
from repro.semiext.hierarchy import MemoryHierarchy, Tier
from repro.semiext.iostats import IoStats
from repro.semiext.storage import NVMStore
from repro.semiext.tiered import TieredBackwardStore
from repro.util.timer import Timer

__all__ = ["PipelineResult", "run_graph500"]


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline execution produced."""

    scenario: ScenarioConfig
    scale: int
    edge_factor: int
    output: BenchmarkOutput
    plan: OffloadPlan
    bfs_iostats: IoStats | None
    construction_requests: int
    construction_bytes: int
    construction_time_s: float = 0.0
    """Wall time of benchmark Step 2 (reported by the official driver
    as ``construction_time``, excluded from TEPS)."""
    resilience: ResilienceStats | None = None
    """Retry/backoff/checksum accounting of the BFS-phase store (fault
    runs; ``None`` for DRAM-only scenarios)."""
    health: DeviceHealthMonitor | None = None
    """Circuit-breaker state and transition history of the CSR device."""
    offload_k: int | None = None
    """Resolved §VI-E backward-tiering budget (``None`` = untiered; an
    ``offload_k="auto"`` scenario records the k the policy picked)."""
    backward_store: TieredBackwardStore | None = None
    """The tiered backward store when ``offload_k`` was set — its
    fallthrough counters describe the whole BFS phase."""

    @property
    def median_teps(self) -> float:
        """Modeled median TEPS (the paper's reported metric)."""
        return self.output.median_teps_modeled


def run_graph500(
    scenario: ScenarioConfig,
    scale: int,
    edge_factor: int = 16,
    n_roots: int = 64,
    seed: int | None = None,
    workdir: str | Path | None = None,
    validate: bool = True,
    edge_format: str = "int64",
    obs: Observability | None = None,
) -> PipelineResult:
    """Run the full benchmark pipeline for one scenario.

    Parameters
    ----------
    scenario:
        Machine/placement/α-β configuration (see
        :mod:`repro.core.scenarios` for the paper's presets).
    scale / edge_factor:
        Kronecker problem size (the paper: SCALE 27, edge factor 16).
    n_roots:
        Benchmark iterations (spec: 64).
    seed:
        Master seed for generation and root sampling.
    workdir:
        Directory for the NVM backing files (a temporary directory when
        omitted; it must outlive the returned result only if you plan to
        re-run the engine).
    validate:
        Run Step 4 after every iteration.
    edge_format:
        On-NVM edge-list encoding: ``"int64"`` (16 B/edge, the reference
        code's format) or ``"packed48"`` (NETAL's 12 B/edge tuples, the
        layout the paper's Figure 3 sizes imply).
    obs:
        Observability session capturing the whole run (``pipeline.*``
        spans and gauges plus everything the store, engine and driver
        record).  Only the BFS-phase CSR store records into it — the
        edge-list store stays unobserved, preserving the paper's §VI-D
        device isolation in the metrics.  Export with
        :meth:`~repro.obs.Observability.export` afterwards, or use the
        CLI's ``--obs out/``.
    """
    if edge_format not in ("int64", "packed48"):
        raise ConfigurationError(
            f"edge_format must be 'int64' or 'packed48', got {edge_format!r}"
        )
    n = 1 << scale
    topo = scenario.topology
    obs = obs if obs is not None else NULL

    # Step 1 — edge list generation.
    with obs.span("pipeline.generate", scale=scale, edge_factor=edge_factor):
        endpoints = generate_edges(
            scale=scale, edge_factor=edge_factor, seed=seed
        )
        edges = EdgeList(endpoints, n)

    store: NVMStore | None = None
    tmp: tempfile.TemporaryDirectory | None = None
    if scenario.is_semi_external:
        assert scenario.device is not None  # enforced by ScenarioConfig
        if workdir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-nvm-")
            workdir = tmp.name
        store = NVMStore(
            Path(workdir) / "csr",
            scenario.device,
            concurrency=topo.n_cores,
            io_mode=scenario.io_mode,
            fault_plan=scenario.fault_plan,
            retry=scenario.retry,
            obs=obs,
        )
        # Per §VI-D the paper isolates the edge list and the CSR files on
        # different devices so the BFS-phase iostat is unpolluted by
        # construction and validation traffic; a second store (same
        # device model, own meters, no observability session — its
        # traffic must not pollute the nvm.* series) reproduces that
        # isolation.
        edge_store = NVMStore(
            Path(workdir) / "edges",
            scenario.device,
            concurrency=topo.n_cores,
        )
        with obs.span("pipeline.offload_edges", edge_format=edge_format):
            if edge_format == "packed48":
                edge_ext = edge_store.put_array(
                    "edge_list", pack_edges_48(edges)
                )
                # Step 2 — construct by reading the edge list back from NVM.
                raw = edge_ext.read_slice(0, edge_ext.size)
                edges_for_build = unpack_edges_48(raw, n)
            else:
                edge_ext = edges.offload(edge_store, "edge_list")
                edges_for_build = EdgeList.from_external(edge_ext, n, charged=True)
    else:
        edges_for_build = edges

    construction = Timer()
    with construction, obs.span("pipeline.construct", n_vertices=n):
        csr = build_csr(edges_for_build)
        forward = ForwardGraph(csr, topo)
        backward = BackwardGraph(csr, topo)

    # Verify the placement before "moving" anything.
    # Status size: tree + visited/frontier bitmaps + queues, measured from
    # a representative state (allocated per run; sized per vertex).
    status_bytes = n * 8 + 2 * (n // 8) + 2 * n * 8

    # §VI-E backward tiering: resolve the per-row DRAM budget k before
    # planning, because tiering shrinks the backward graph's resident
    # bytes (only the truncated prefixes count against DRAM; the tails
    # live with the forward graph on the device).
    tiered: TieredBackwardStore | None = None
    plan_scenario = scenario
    if scenario.offload_k is not None and scenario.is_semi_external:
        assert store is not None
        shard_degrees = [shard.degrees() for shard in backward.shards]
        # The DRAM budget an *untiered* run of this scenario would get;
        # tiering then frees space inside it (→ page cache) rather than
        # shrinking the budget along with the resident set.
        full_budget = scenario.dram_budget(backward.nbytes + status_bytes)
        plan_scenario = (
            scenario
            if scenario.dram_capacity_bytes is not None
            else replace(scenario, dram_capacity_bytes=full_budget)
        )
        if scenario.offload_k == "auto":
            proof = MemoryHierarchy(dram_capacity=full_budget, nvm_store=store)
            proof.reserve("status", status_bytes, Tier.DRAM)
            k = TieredKPolicy().pick(
                shard_degrees, proof, store.health.health_score()
            )
        else:
            k = int(scenario.offload_k)
        if k is not None:
            with obs.span("pipeline.offload_backward", k=k):
                tiered = TieredBackwardStore.build(backward, k, store, obs=obs)

    sizes = StructureSizes(
        edge_list=edge_ext.nbytes if scenario.is_semi_external else edges.nbytes,
        forward=forward.nbytes,
        backward=tiered.dram_nbytes if tiered is not None else backward.nbytes,
        status=status_bytes,
    )
    plan = OffloadPlanner(plan_scenario).plan(sizes, store=store)
    obs.gauge(M_PIPE_DRAM_BUDGET).set(plan.dram_budget)
    obs.gauge(M_PIPE_DRAM_USED).set(plan.dram_used)

    policy = AlphaBetaPolicy(alpha=scenario.alpha, beta=scenario.beta)
    if scenario.is_semi_external:
        assert store is not None
        # DRAM left over after the resident structures acts as OS page
        # cache for the NVM files — the mechanism behind the paper's
        # Figure 9 (small graphs run at DRAM speed after warm-up).
        store.page_cache_bytes = max(0, plan.dram_budget - plan.dram_used)
        obs.gauge(M_PIPE_PAGE_CACHE).set(store.page_cache_bytes)
        construction_requests = edge_store.iostats.n_requests
        construction_bytes = edge_store.iostats.total_bytes
        with obs.span("pipeline.offload_forward"):
            engine: HybridBFS = SemiExternalBFS.offload(
                forward=forward,
                backward=backward,
                policy=policy,
                store=store,
                cost_model=scenario.cost_model,
                backward_scanners=tiered.scanners if tiered is not None else None,
            )
    else:
        construction_requests = 0
        construction_bytes = 0
        engine = HybridBFS(
            forward=forward,
            backward=backward,
            policy=policy,
            cost_model=scenario.cost_model,
            obs=obs,
        )

    # Steps 3–4, iterated.
    driver = Graph500Driver(
        edges, n_roots=n_roots, seed=seed, validate=validate, obs=obs
    )
    with obs.span("pipeline.bfs", n_roots=n_roots):
        output = driver.run(engine)

    result = PipelineResult(
        scenario=scenario,
        scale=scale,
        edge_factor=edge_factor,
        output=output,
        plan=plan,
        bfs_iostats=store.iostats if store is not None else None,
        construction_requests=construction_requests,
        construction_bytes=construction_bytes,
        construction_time_s=construction.elapsed,
        resilience=store.resilience if store is not None else None,
        health=store.health if store is not None else None,
        offload_k=tiered.k if tiered is not None else None,
        backward_store=tiered,
    )
    if tmp is not None:
        tmp.cleanup()
    return result
