"""The paper's three scenarios as ready-made presets (Table I).

===================  ========  ==================  =======================
Preset               DRAM      NVM                 Best (α, β) per Fig. 7
===================  ========  ==================  =======================
``DRAM_ONLY``        128 GB    —                   α = 1e4, β = 10·α
``DRAM_PCIE_FLASH``  64 GB     ioDrive2 320 GB     α = 1e6, β = 1·α
``DRAM_SSD``         64 GB     Intel 320 600 GB    α = 1e5, β = 0.1·α
===================  ========  ==================  =======================

DRAM headrooms are the paper's capacity ratios against what each
placement keeps resident at SCALE 27: 128 GB vs the full 88.3 GB working
set (≈1.45) for DRAM-only, and 64 GB vs the 48.2 GB of backward graph +
status data (≈1.33) for the offloaded scenarios — the 64 GB machines
cannot hold the 88.3 GB working set, which is what forces the forward
graph off DRAM at paper scale.
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, ScenarioKind
from repro.semiext.device import PCIE_FLASH, SATA_SSD

__all__ = ["DRAM_ONLY", "DRAM_PCIE_FLASH", "DRAM_SSD", "PAPER_SCENARIOS"]

DRAM_ONLY = ScenarioConfig(
    name="DRAM-only",
    kind=ScenarioKind.DRAM_ONLY,
    device=None,
    alpha=1e4,
    beta=1e5,  # 10·α
    dram_headroom=128.0 / 88.3,
)
"""All structures in DRAM; the paper's 5.12 GTEPS baseline."""

DRAM_PCIE_FLASH = ScenarioConfig(
    name="DRAM+PCIeFlash",
    kind=ScenarioKind.SEMI_EXTERNAL,
    device=PCIE_FLASH,
    alpha=1e6,
    beta=1e6,  # 1·α
    dram_headroom=64.0 / 48.2,
)
"""Forward graph on ioDrive2; 4.22 GTEPS, −19.18 % vs DRAM-only."""

DRAM_SSD = ScenarioConfig(
    name="DRAM+SSD",
    kind=ScenarioKind.SEMI_EXTERNAL,
    device=SATA_SSD,
    alpha=1e5,
    beta=1e4,  # 0.1·α
    dram_headroom=64.0 / 48.2,
)
"""Forward graph on the Intel 320; 2.76 GTEPS, −47.1 % vs DRAM-only."""

PAPER_SCENARIOS = (DRAM_ONLY, DRAM_PCIE_FLASH, DRAM_SSD)
"""The three Table I configurations, in the paper's order."""
