"""Scenario configuration (the rows of Table I).

A :class:`ScenarioConfig` describes one machine/placement combination: how
much DRAM exists, which NVM device (if any) backs the semi-external tier,
the NUMA topology, and the α/β direction-switching parameters the paper
tuned per scenario.

DRAM capacity is expressed *relative* to the measured working set by
default (``dram_headroom``), because this reproduction runs at smaller
SCALEs than the paper: the paper's "64 GB DRAM vs an 88.3 GB working set"
is the ratio that matters, not the absolute bytes.  An absolute budget can
still be pinned with ``dram_capacity_bytes`` for paper-scale planning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.numa.topology import NumaTopology
from repro.perfmodel.cost import DramCostModel
from repro.semiext.device import DeviceModel
from repro.semiext.faults import FaultPlan, RetryPolicy

__all__ = ["ScenarioKind", "ScenarioConfig"]


class ScenarioKind(enum.Enum):
    """Placement policy of a scenario."""

    DRAM_ONLY = "dram-only"
    SEMI_EXTERNAL = "semi-external"


@dataclass(frozen=True)
class ScenarioConfig:
    """One experimental scenario.

    Parameters
    ----------
    name:
        Display name (matches the paper's scenario labels).
    kind:
        DRAM-only keeps everything resident; semi-external offloads the
        edge list and forward graph to the device per §V-A.
    device:
        NVM device model (required for semi-external scenarios).
    alpha / beta:
        The scenario's direction-switch thresholds.  The paper's optima:
        DRAM-only α=1e4, β=10α; PCIeFlash α=1e6, β=1α; SSD α=1e5, β=0.1α.
    dram_headroom:
        DRAM budget as a multiple of what the scenario's placement keeps
        resident in DRAM (Table I's 128 GB vs the 88.3 GB working set
        ≈ 1.45 for DRAM-only; 64 GB vs the 48.2 GB backward+status
        ≈ 1.33 for the offloaded scenarios).
    dram_capacity_bytes:
        Absolute DRAM budget overriding ``dram_headroom`` when set.
    topology:
        Simulated NUMA machine (Table I: 4 × 12 cores).
    cost_model:
        DRAM cost model used for modeled TEPS.
    io_mode:
        Storage submission mode: ``"sync"`` (the paper's per-worker
        ``read(2)``) or ``"async"`` (§VI-D's libaio-style aggregation).
    fault_plan:
        Optional seeded device-fault injection plan
        (:class:`~repro.semiext.faults.FaultPlan`); attached to the CSR
        store so the BFS phase exercises the resilient read path.
        Degradation runs are first-class experiments: the pipeline
        result carries their retry/backoff/circuit accounting.
    retry:
        Retry/backoff/timeout policy of the resilient read path
        (defaults apply when ``None``).
    offload_k:
        §VI-E backward-graph tiering: keep only the first ``offload_k``
        adjacency entries per vertex in DRAM and serve each row's tail
        from the device (:class:`~repro.semiext.tiered.TieredBackwardStore`).
        ``None`` keeps the whole backward graph resident (the paper's
        default placement); ``"auto"`` lets
        :class:`~repro.bfs.policies.TieredKPolicy` pick k from a
        :class:`~repro.semiext.hierarchy.MemoryHierarchy` placement proof
        and the device's health.  Semi-external scenarios only.
    """

    name: str
    kind: ScenarioKind
    device: DeviceModel | None = None
    alpha: float = 1e4
    beta: float = 1e5
    dram_headroom: float = 1.45
    dram_capacity_bytes: int | None = None
    topology: NumaTopology = NumaTopology(n_nodes=4, cores_per_node=12)
    cost_model: DramCostModel = DramCostModel()
    io_mode: str = "sync"
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy | None = None
    offload_k: int | str | None = None

    def __post_init__(self) -> None:
        if self.kind is ScenarioKind.SEMI_EXTERNAL and self.device is None:
            raise ConfigurationError(
                f"scenario {self.name!r} is semi-external but has no device"
            )
        if (
            self.fault_plan is not None
            and self.fault_plan.active
            and self.kind is not ScenarioKind.SEMI_EXTERNAL
        ):
            raise ConfigurationError(
                f"scenario {self.name!r} has a fault plan but no NVM tier "
                "to inject faults into"
            )
        if self.io_mode not in ("sync", "async"):
            raise ConfigurationError(
                f"io_mode must be 'sync' or 'async', got {self.io_mode!r}"
            )
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigurationError("alpha/beta must be positive")
        if self.dram_headroom <= 0:
            raise ConfigurationError(
                f"dram_headroom must be positive: {self.dram_headroom}"
            )
        if self.dram_capacity_bytes is not None and self.dram_capacity_bytes <= 0:
            raise ConfigurationError("dram_capacity_bytes must be positive")
        if self.offload_k is not None:
            if self.kind is not ScenarioKind.SEMI_EXTERNAL:
                raise ConfigurationError(
                    f"scenario {self.name!r} sets offload_k but has no NVM "
                    "tier to offload the backward tails to"
                )
            if isinstance(self.offload_k, str):
                if self.offload_k != "auto":
                    raise ConfigurationError(
                        f"offload_k must be an int >= 0, 'auto' or None, "
                        f"got {self.offload_k!r}"
                    )
            elif not isinstance(self.offload_k, int) or self.offload_k < 0:
                raise ConfigurationError(
                    f"offload_k must be an int >= 0, 'auto' or None, "
                    f"got {self.offload_k!r}"
                )

    def dram_budget(self, working_set_bytes: int) -> int:
        """Resolve the DRAM budget for a measured working set."""
        if self.dram_capacity_bytes is not None:
            return self.dram_capacity_bytes
        return int(self.dram_headroom * working_set_bytes)

    def with_switching(self, alpha: float, beta: float) -> "ScenarioConfig":
        """The same scenario with different α/β (parameter sweeps)."""
        return replace(self, alpha=alpha, beta=beta)

    @property
    def is_semi_external(self) -> bool:
        """Whether the forward graph is offloaded in this scenario."""
        return self.kind is ScenarioKind.SEMI_EXTERNAL
