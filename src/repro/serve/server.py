"""The serving loop: admit, batch, traverse, cache, account.

:class:`BFSServer` replays a timestamped request stream against a
:class:`~repro.serve.catalog.GraphCatalog` entirely on the simulated
clock.  Each iteration advances time to the next arrival (when idle),
admits everything that has arrived through the bounded
:class:`~repro.serve.scheduler.AdmissionQueue` (rejecting with
``queue_full`` backpressure once the engine falls behind), forms a
fair round-robin batch and answers it in three tiers:

1. **Result cache** — hits complete immediately, no graph touched.
2. **Degradation shed** — while a graph's device circuit breaker is
   open, uncached queries against it are rejected with ``degraded``
   instead of hammering a failing device (cache-only serving).
3. **Batched traversal** — remaining queries are deduplicated per
   ``(graph, root)``, grouped per graph and run through one
   :class:`~repro.serve.engine.BatchedBFS` pass that shares forward-graph
   chunk fetches across the whole group.

Latency is measured on the simulated clock (completion minus arrival),
so the whole serve — metrics included — is deterministic per seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.schema import (
    M_SERVE_BATCH_QUERIES,
    M_SERVE_BATCHES,
    M_SERVE_LATENCY,
    M_SERVE_QUEUE_DEPTH,
    M_SERVE_REJECTED,
    M_SERVE_REQUESTS,
    M_SERVE_SERVED,
)
from repro.obs.session import Observability
from repro.serve.catalog import GraphCatalog
from repro.serve.engine import BatchedBFS
from repro.serve.results import ResultCache
from repro.serve.scheduler import AdmissionQueue, RejectionStats
from repro.serve.workload import Request

__all__ = ["ServedRequest", "ServeReport", "BFSServer"]


@dataclass(frozen=True)
class ServedRequest:
    """One completed request: when it finished, how long it waited, how."""

    request: Request
    completed_s: float
    latency_s: float
    source: str  # "cache" | "batched"
    traversed_edges: int


@dataclass
class ServeReport:
    """Everything one :meth:`BFSServer.serve` run produced.

    ``completions`` are in completion order; ``rejected`` pairs each shed
    request with its reason (``queue_full`` or ``degraded``).
    """

    completions: list[ServedRequest] = field(default_factory=list)
    rejected: list[tuple[Request, str]] = field(default_factory=list)
    rejections: RejectionStats = field(default_factory=RejectionStats)
    n_batches: int = 0
    n_traversals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_requested: int = 0
    rows_fetched: int = 0
    nvm_bytes_read: int = 0
    duration_s: float = 0.0

    @property
    def n_requests(self) -> int:
        """All requests that entered the server."""
        return len(self.completions) + len(self.rejected)

    @property
    def n_served(self) -> int:
        """Requests answered (cache or traversal)."""
        return len(self.completions)

    @property
    def n_rejected(self) -> int:
        """Requests shed by backpressure or degradation."""
        return len(self.rejected)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served-path lookups answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def served_by_tenant(self) -> dict[str, int]:
        """Completion counts per tenant (fairness accounting)."""
        out: dict[str, int] = {}
        for c in self.completions:
            out[c.request.tenant] = out.get(c.request.tenant, 0) + 1
        return out

    def latencies_s(self) -> list[float]:
        """Per-completion latency, completion order."""
        return [c.latency_s for c in self.completions]


class BFSServer:
    """Deterministic BFS query server over a graph catalog.

    Parameters
    ----------
    catalog:
        The built graphs to serve (shares its clock and obs session).
    batch_size:
        Maximum queries coalesced into one scheduling batch.
    queue_capacity:
        Bound of the admission queue; arrivals beyond it are rejected.
    cache_capacity / cache_ttl_s:
        Result-cache sizing (see :class:`~repro.serve.results.ResultCache`).
    obs:
        Observability session; defaults to the catalog's.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        batch_size: int = 8,
        queue_capacity: int = 64,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.catalog = catalog
        self.batch_size = int(batch_size)
        self.queue_capacity = int(queue_capacity)
        self.obs = obs if obs is not None else catalog.obs
        self.obs.bind_clock(catalog.clock)
        self.cache = ResultCache(
            capacity=cache_capacity,
            ttl_s=cache_ttl_s,
            clock=catalog.clock,
            obs=self.obs,
        )
        self._engines: dict[str, BatchedBFS] = {}

    def engine_for(self, name: str) -> BatchedBFS:
        """The (persistent) batched engine for catalog graph ``name``."""
        engine = self._engines.get(name)
        if engine is None:
            engine = BatchedBFS(self.catalog.get(name), obs=self.obs)
            self._engines[name] = engine
        return engine

    def serve(self, requests: list[Request]) -> ServeReport:
        """Replay ``requests`` to completion and return the full report."""
        clock = self.catalog.clock
        obs = self.obs
        report = ServeReport()
        t_serve0 = clock.now()
        nvm0 = self._nvm_bytes()
        pending = deque(sorted(requests, key=lambda r: r.arrival_s))
        queue = AdmissionQueue(self.queue_capacity)
        while pending or queue.depth:
            now = clock.now()
            if queue.depth == 0 and pending and pending[0].arrival_s > now:
                clock.advance(pending[0].arrival_s - now)
                now = clock.now()
            while pending and pending[0].arrival_s <= now:
                r = pending.popleft()
                obs.counter(M_SERVE_REQUESTS, tenant=r.tenant).inc()
                if not queue.offer(r):
                    self._reject(report, r, "queue_full")
            obs.gauge(M_SERVE_QUEUE_DEPTH).set(queue.depth)
            batch = queue.next_batch(self.batch_size)
            if batch:
                self._serve_batch(batch, report)
        report.duration_s = clock.now() - t_serve0
        report.cache_hits = self.cache.hits
        report.cache_misses = self.cache.misses
        report.nvm_bytes_read = self._nvm_bytes() - nvm0
        for engine in self._engines.values():
            report.rows_requested += engine.rows_requested
            report.rows_fetched += engine.rows_fetched
        return report

    # -- internals -------------------------------------------------------------

    def _nvm_bytes(self) -> int:
        total = 0
        for name in self.catalog.names():
            store = self.catalog.get(name).store
            if store is not None:
                total += store.iostats.total_bytes
        return total

    def _reject(self, report: ServeReport, request: Request,
                reason: str) -> None:
        report.rejections.record(request, reason)
        report.rejected.append((request, reason))
        self.obs.counter(M_SERVE_REJECTED, reason=reason).inc()
        self.obs.event(
            "serve.reject",
            reason=reason,
            tenant=request.tenant,
            graph=request.graph,
            root=request.root,
        )

    def _complete(self, report: ServeReport, request: Request,
                  completed_s: float, source: str,
                  traversed_edges: int) -> None:
        latency = completed_s - request.arrival_s
        report.completions.append(ServedRequest(
            request=request,
            completed_s=completed_s,
            latency_s=latency,
            source=source,
            traversed_edges=traversed_edges,
        ))
        self.obs.counter(M_SERVE_SERVED, source=source).inc()
        self.obs.histogram(M_SERVE_LATENCY).observe(latency)
        self.obs.event(
            "serve.complete",
            latency_s=latency,
            source=source,
            tenant=request.tenant,
        )

    def _serve_batch(self, batch: list[Request],
                     report: ServeReport) -> None:
        clock = self.catalog.clock
        obs = self.obs
        with obs.span("serve.batch", size=len(batch)):
            t_batch = clock.now()
            misses: list[Request] = []
            for r in batch:
                cached = self.cache.get(r.graph, r.root)
                if cached is not None:
                    self._complete(report, r, t_batch, "cache",
                                   cached.traversed_edges)
                else:
                    misses.append(r)
            # Cache-only serving while a device circuit is open: shed the
            # misses instead of queueing against a failing device.
            to_run: dict[str, list[Request]] = {}
            for r in misses:
                if self.catalog.get(r.graph).circuit_open:
                    self._reject(report, r, "degraded")
                else:
                    to_run.setdefault(r.graph, []).append(r)
            n_queries = 0
            answered: dict[tuple[str, int], int] = {}
            for name in sorted(to_run):
                with self.catalog.open(name):
                    engine = self.engine_for(name)
                    roots = sorted({r.root for r in to_run[name]})
                    n_queries += len(roots)
                    for res in engine.run_batch(roots):
                        self.cache.put(name, res.root, res.parent,
                                       res.traversed_edges)
                        answered[(name, res.root)] = res.traversed_edges
            if n_queries:
                report.n_batches += 1
                report.n_traversals += n_queries
                obs.counter(M_SERVE_BATCHES).inc()
                obs.histogram(M_SERVE_BATCH_QUERIES).observe(n_queries)
            t_done = clock.now()
            for name in sorted(to_run):
                for r in to_run[name]:
                    self._complete(report, r, t_done, "batched",
                                   answered[(name, r.root)])

    def __repr__(self) -> str:
        return (
            f"BFSServer(batch={self.batch_size}, "
            f"queue={self.queue_capacity}, cache={self.cache!r})"
        )
