"""The serving loop: admit, batch, traverse, cache, account.

:class:`BFSServer` replays a timestamped request stream against a
:class:`~repro.serve.catalog.GraphCatalog` entirely on the simulated
clock.  Each iteration advances time to the next arrival (when idle),
admits everything that has arrived through the bounded
:class:`~repro.serve.scheduler.AdmissionQueue` (rejecting with
``queue_full`` backpressure once the engine falls behind), forms a
fair round-robin batch and answers it in three tiers:

1. **Result cache** — hits complete immediately, no graph touched.
2. **Degradation shed** — while a graph's device circuit breaker is
   open, uncached queries against it are rejected with ``degraded``
   instead of hammering a failing device (cache-only serving).
3. **Batched traversal** — remaining queries are deduplicated per
   ``(graph, root)``, grouped per graph and run through one
   :class:`~repro.serve.engine.BatchedBFS` pass that shares forward-graph
   chunk fetches across the whole group.

Latency is measured on the simulated clock (completion minus arrival),
so the whole serve — metrics included — is deterministic per seed.

**Crash recovery** (``checkpoint_every > 0``): each batched traversal
checkpoints its per-query state every N rounds through a
:class:`~repro.recovery.checkpoint.CheckpointManager`, and the store's
fault plan may inject a seeded
:class:`~repro.errors.ProcessCrashError` at a round boundary.  On a
crash the server's watchdog discards the dead engine, backs off
exponentially (deterministic seeded jitter), reloads the newest valid
checkpoint (torn epochs fall back by CRC), invalidates cache entries
newer than the checkpoint, and **requeues** the in-flight requests at
the head of the admission queue — the next batch resumes the traversal
from the checkpoint instead of restarting it.  A completed-request
guard makes completion at-most-once: ``serve.complete`` never fires
twice for one request, even across requeues.  The serve loop drains
gracefully — it returns only once every admitted request has been
completed or explicitly rejected, crashes included.

Per-request **deadlines** (:attr:`~repro.serve.workload.Request.deadline_s`)
are enforced at batch formation and again at completion: a request whose
latency budget has expired is aborted with a ``deadline`` rejection
through ``serve.reject`` instead of completing late.

**Dynamic graphs**: the request stream may interleave
:class:`~repro.serve.workload.MutationEvent`\\ s.  Each is applied
atomically between scheduling batches through a per-graph
:class:`~repro.graphmut.versioned.GraphMutator` (bumping the graph
version), after which a fourth answer tier sits between the cache and
the traversal: a cache entry from an older version is **repaired**
incrementally (affected-region re-expansion, charged for the rows it
reads) instead of recomputed, falling back to the batched traversal when
the dirty region is too large or compaction pruned the history.
Entries older than the compaction base are dropped with
``cause="version"`` evictions, and checkpointed crash state of the old
version is discarded — a requeued query recomputes at the new version.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ProcessCrashError
from repro.obs.schema import (
    M_REC_CRASHES,
    M_REC_REQUEUES,
    M_REC_RESTORES,
    M_REC_RETRIES,
    M_REC_TORN_EPOCHS,
    M_REC_WATCHDOG,
    M_SERVE_BATCH_QUERIES,
    M_SERVE_BATCHES,
    M_SERVE_LATENCY,
    M_SERVE_QUEUE_DEPTH,
    M_SERVE_REJECTED,
    M_SERVE_REQUESTS,
    M_SERVE_SERVED,
)
from repro.obs.session import Observability
from repro.recovery.checkpoint import (
    CheckpointManager,
    QuerySnapshot,
    RestoredRun,
    load_run,
)
from repro.serve.catalog import GraphCatalog
from repro.serve.engine import BatchedBFS
from repro.serve.results import ResultCache
from repro.serve.scheduler import AdmissionQueue, RejectionStats
from repro.serve.workload import MutationEvent, Request
from repro.util.rng import derive_rng

__all__ = ["ServedRequest", "ServeReport", "BFSServer"]


@dataclass(frozen=True)
class ServedRequest:
    """One completed request: when it finished, how long it waited, how."""

    request: Request
    completed_s: float
    latency_s: float
    source: str  # "cache" | "batched" | "repaired"
    traversed_edges: int


@dataclass
class ServeReport:
    """Everything one :meth:`BFSServer.serve` run produced.

    ``completions`` are in completion order; ``rejected`` pairs each shed
    request with its reason (``queue_full``, ``degraded`` or
    ``deadline``).  The ``n_crashes``/``n_requeued``/``n_retries``/
    ``n_watchdog_restarts``/``stale_invalidated`` counters mirror the
    ``recovery.*`` metric series for callers without an obs registry.
    """

    completions: list[ServedRequest] = field(default_factory=list)
    rejected: list[tuple[Request, str]] = field(default_factory=list)
    rejections: RejectionStats = field(default_factory=RejectionStats)
    n_batches: int = 0
    n_traversals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_requested: int = 0
    rows_fetched: int = 0
    nvm_bytes_read: int = 0
    duration_s: float = 0.0
    n_crashes: int = 0
    n_requeued: int = 0
    n_retries: int = 0
    n_watchdog_restarts: int = 0
    stale_invalidated: int = 0
    n_mutations: int = 0
    mutated_edges: int = 0
    n_repairs: int = 0
    n_repair_fallbacks: int = 0
    version_invalidated: int = 0

    @property
    def n_requests(self) -> int:
        """All requests that entered the server."""
        return len(self.completions) + len(self.rejected)

    @property
    def n_served(self) -> int:
        """Requests answered (cache or traversal)."""
        return len(self.completions)

    @property
    def n_rejected(self) -> int:
        """Requests shed by backpressure or degradation."""
        return len(self.rejected)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served-path lookups answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def served_by_tenant(self) -> dict[str, int]:
        """Completion counts per tenant (fairness accounting)."""
        out: dict[str, int] = {}
        for c in self.completions:
            out[c.request.tenant] = out.get(c.request.tenant, 0) + 1
        return out

    def latencies_s(self) -> list[float]:
        """Per-completion latency, completion order."""
        return [c.latency_s for c in self.completions]


class BFSServer:
    """Deterministic BFS query server over a graph catalog.

    Parameters
    ----------
    catalog:
        The built graphs to serve (shares its clock and obs session).
    batch_size:
        Maximum queries coalesced into one scheduling batch.
    queue_capacity:
        Bound of the admission queue; arrivals beyond it are rejected.
    cache_capacity / cache_ttl_s:
        Result-cache sizing (see :class:`~repro.serve.results.ResultCache`).
    checkpoint_every:
        Traversal checkpoint cadence in batch rounds; ``0`` (the
        default) disables checkpointing *and* crash handling entirely —
        the server then behaves exactly as before this subsystem
        existed.
    max_retries:
        Crash-recovery retry budget per graph; one more crash re-raises
        the :class:`~repro.errors.ProcessCrashError`.
    backoff_base_s / backoff_factor:
        Exponential backoff between a crash and its retry: attempt *k*
        waits ``base * factor**(k-1)`` seconds, scaled by a
        deterministic seeded jitter in ``[0.5, 1.5)``.
    retry_seed:
        Seed of the jitter RNG (recovery timing is reproducible per
        seed, like everything else here).
    repair_threshold:
        Maximum dirty fraction an incremental tree repair may touch
        before the query falls back to the batched traversal.
    compact_every:
        Mutation batches between delta-overlay compactions (``0``
        disables automatic compaction).
    obs:
        Observability session; defaults to the catalog's.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        batch_size: int = 8,
        queue_capacity: int = 64,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        obs: Observability | None = None,
        checkpoint_every: int = 0,
        max_retries: int = 3,
        backoff_base_s: float = 1e-4,
        backoff_factor: float = 2.0,
        retry_seed: int = 0,
        repair_threshold: float = 0.25,
        compact_every: int = 8,
    ) -> None:
        self.catalog = catalog
        self.batch_size = int(batch_size)
        self.queue_capacity = int(queue_capacity)
        self.obs = obs if obs is not None else catalog.obs
        self.obs.bind_clock(catalog.clock)
        self.cache = ResultCache(
            capacity=cache_capacity,
            ttl_s=cache_ttl_s,
            clock=catalog.clock,
            obs=self.obs,
        )
        self._engines: dict[str, BatchedBFS] = {}
        self.checkpoint_every = int(checkpoint_every)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_factor = float(backoff_factor)
        self._retry_rng = derive_rng(retry_seed, "serve", "retry")
        self.repair_threshold = float(repair_threshold)
        self.compact_every = int(compact_every)
        self._mutators: dict = {}
        self._managers: dict[str, CheckpointManager] = {}
        self._resume: dict[str, RestoredRun] = {}
        self._crash_attempts: dict[str, int] = {}
        self._done_ids: set[int] = set()
        self._batch_seq = 0
        # Request identity -> trace id, assigned once at admission.
        # Crash-requeued requests keep their object identity, so one
        # request is one trace across retries.
        self._trace_ids: dict[int, str] = {}

    def engine_for(self, name: str) -> BatchedBFS:
        """The (persistent) query engine for catalog graph ``name``.

        Partitioned deployments (``repro.dist``) get a
        :class:`~repro.dist.serve.DistributedEngine` routing through
        their coordinator; everything else gets the shared-store
        :class:`~repro.serve.engine.BatchedBFS`.
        """
        engine = self._engines.get(name)
        if engine is None:
            graph = self.catalog.get(name)
            if getattr(graph, "is_partitioned", False):
                from repro.dist.serve import DistributedEngine

                engine = DistributedEngine(graph, obs=self.obs)
            else:
                engine = BatchedBFS(graph, obs=self.obs)
            self._engines[name] = engine
        return engine

    def mutator_for(self, name: str):
        """The (lazily created) mutation applier for catalog graph ``name``."""
        mutator = self._mutators.get(name)
        if mutator is None:
            from repro.graphmut.versioned import GraphMutator

            mutator = GraphMutator(
                self.catalog.get(name),
                obs=self.obs,
                repair_threshold=self.repair_threshold,
                compact_every=self.compact_every,
            )
            self._mutators[name] = mutator
        return mutator

    def serve(self, requests: list) -> ServeReport:
        """Replay a stream of :class:`Request`\\ s (and optionally
        :class:`MutationEvent`\\ s) to completion; returns the report.

        The loop drains gracefully: it returns only once every admitted
        request has completed or been explicitly rejected — requests
        requeued by crash recovery are picked up again on a later
        iteration, never dropped.  Mutation events apply at their
        arrival time, strictly between scheduling batches, so every
        query observes exactly one whole graph version.
        """
        clock = self.catalog.clock
        obs = self.obs
        report = ServeReport()
        t_serve0 = clock.now()
        nvm0 = self._nvm_bytes()
        pending = deque(sorted(requests, key=lambda r: r.arrival_s))
        queue = AdmissionQueue(self.queue_capacity)
        while pending or queue.depth:
            now = clock.now()
            if queue.depth == 0 and pending and pending[0].arrival_s > now:
                clock.advance(pending[0].arrival_s - now)
                now = clock.now()
            while pending and pending[0].arrival_s <= now:
                r = pending.popleft()
                if isinstance(r, MutationEvent):
                    self._apply_mutation(r, report)
                    continue
                obs.counter(M_SERVE_REQUESTS, tenant=r.tenant).inc()
                trace_id = obs.new_trace_id()
                self._trace_ids[id(r)] = trace_id
                obs.event(
                    "serve.admit",
                    trace_id=trace_id,
                    tenant=r.tenant,
                    graph=r.graph,
                    root=r.root,
                )
                if not queue.offer(r):
                    self._reject(report, r, "queue_full")
            obs.gauge(M_SERVE_QUEUE_DEPTH).set(queue.depth)
            batch = queue.next_batch(self.batch_size)
            if batch:
                batch = self._enforce_deadlines(batch, report)
            if batch:
                self._serve_batch(batch, report, queue)
        report.duration_s = clock.now() - t_serve0
        report.cache_hits = self.cache.hits
        report.cache_misses = self.cache.misses
        report.nvm_bytes_read = self._nvm_bytes() - nvm0
        for engine in self._engines.values():
            report.rows_requested += engine.rows_requested
            report.rows_fetched += engine.rows_fetched
        return report

    # -- internals -------------------------------------------------------------

    def _apply_mutation(self, event: MutationEvent,
                        report: ServeReport) -> None:
        """Apply one mutation batch atomically between batches.

        Also drops every cache entry too old to repair (compaction may
        have pruned the batch history behind it) and discards
        checkpointed crash state of the previous version — a requeued
        query must recompute on the new graph, not resume into it.
        """
        from repro.graphmut.stream import MutationBatch

        name = event.graph
        mutator = self.mutator_for(name)
        graph = self.catalog.get(name)
        batch = MutationBatch.make(event.inserts, event.deletes,
                                   graph.n_vertices)
        mutator.apply(batch)
        report.n_mutations += 1
        report.mutated_edges += batch.n_mutations
        report.version_invalidated += self.cache.invalidate_versions(
            name, mutator.min_repairable_version
        )
        self._resume.pop(name, None)
        self._managers.pop(name, None)

    def _try_repair(self, request: Request, version: int,
                    report: ServeReport) -> int | None:
        """Repair a stale cache entry to ``version``; returns the
        traversed-edge count on success, ``None`` to fall through to the
        batched traversal."""
        mutator = self._mutators.get(request.graph)
        if mutator is None:
            return None
        entry = self.cache.peek(request.graph, request.root)
        if entry is None or entry.version == version:
            return None
        if not mutator.can_repair(entry.version):
            return None
        outcome = mutator.repair(entry.parent, request.root, entry.version)
        if outcome is None:
            report.n_repair_fallbacks += 1
            return None
        graph = self.catalog.get(request.graph)
        traversed = int(graph.degrees[outcome.parent >= 0].sum() // 2)
        self.cache.put(request.graph, request.root, outcome.parent,
                       traversed, version=version)
        report.n_repairs += 1
        return traversed

    def _nvm_bytes(self) -> int:
        total = 0
        for name in self.catalog.names():
            graph = self.catalog.get(name)
            if graph.store is not None:
                total += graph.store.iostats.total_bytes
            else:
                worker_bytes = getattr(graph, "worker_nvm_bytes", None)
                if worker_bytes is not None:
                    total += worker_bytes()
        return total

    def _trace_id(self, request: Request) -> str:
        """The request's admission-assigned trace id."""
        return self._trace_ids.get(id(request), "t000000")

    def _reject(self, report: ServeReport, request: Request,
                reason: str) -> None:
        report.rejections.record(request, reason)
        report.rejected.append((request, reason))
        self.obs.counter(M_SERVE_REJECTED, reason=reason).inc()
        self.obs.event(
            "serve.reject",
            reason=reason,
            trace_id=self._trace_id(request),
            tenant=request.tenant,
            graph=request.graph,
            root=request.root,
        )

    def _enforce_deadlines(self, batch: list[Request],
                           report: ServeReport) -> list[Request]:
        """Abort batch members whose latency budget already expired."""
        now = self.catalog.clock.now()
        kept: list[Request] = []
        for r in batch:
            if r.deadline_s is not None and now > r.arrival_s + r.deadline_s:
                self._reject(report, r, "deadline")
            else:
                kept.append(r)
        return kept

    def _complete(self, report: ServeReport, request: Request,
                  completed_s: float, source: str,
                  traversed_edges: int) -> None:
        # At-most-once: a request requeued by crash recovery may cross
        # paths with an already-recorded answer; never double-fire
        # serve.complete for the same request object.
        if id(request) in self._done_ids:
            return
        self._done_ids.add(id(request))
        latency = completed_s - request.arrival_s
        report.completions.append(ServedRequest(
            request=request,
            completed_s=completed_s,
            latency_s=latency,
            source=source,
            traversed_edges=traversed_edges,
        ))
        trace_id = self._trace_id(request)
        self.obs.counter(M_SERVE_SERVED, source=source).inc()
        self.obs.histogram(M_SERVE_LATENCY).observe(
            latency, exemplar=trace_id
        )
        self.obs.event(
            "serve.complete",
            latency_s=latency,
            source=source,
            trace_id=trace_id,
            tenant=request.tenant,
        )

    def _serve_batch(self, batch: list[Request],
                     report: ServeReport,
                     queue: AdmissionQueue) -> None:
        clock = self.catalog.clock
        obs = self.obs
        with obs.span(
            "serve.batch",
            size=len(batch),
            trace_ids=",".join(self._trace_id(r) for r in batch),
        ):
            t_batch = clock.now()
            misses: list[Request] = []
            for r in batch:
                version = getattr(self.catalog.get(r.graph), "version", 0)
                cached = self.cache.get(r.graph, r.root, version=version)
                if cached is not None:
                    self._complete(report, r, t_batch, "cache",
                                   cached.traversed_edges)
                    continue
                # Repair tier: a stale entry for a mutated graph is
                # patched in the affected region instead of recomputed;
                # completion time includes the repair's charged reads.
                traversed = self._try_repair(r, version, report)
                if traversed is not None:
                    self._complete(report, r, clock.now(), "repaired",
                                   traversed)
                else:
                    misses.append(r)
            # Cache-only serving while a device circuit is open: shed the
            # misses instead of queueing against a failing device.
            to_run: dict[str, list[Request]] = {}
            for r in misses:
                if self.catalog.get(r.graph).circuit_open:
                    self._reject(report, r, "degraded")
                else:
                    to_run.setdefault(r.graph, []).append(r)
            n_queries = 0
            answered: dict[tuple[str, int], int] = {}
            crashed: set[str] = set()
            for name in sorted(to_run):
                with self.catalog.open(name):
                    try:
                        n_queries += self._answer_graph(
                            name, to_run[name], answered
                        )
                    except ProcessCrashError:
                        crashed.add(name)
                        self._recover(name, to_run[name], queue, report)
            if n_queries:
                report.n_batches += 1
                report.n_traversals += n_queries
                obs.counter(M_SERVE_BATCHES).inc()
                obs.histogram(M_SERVE_BATCH_QUERIES).observe(n_queries)
            t_done = clock.now()
            for name in sorted(to_run):
                if name in crashed:
                    continue  # requeued; a later batch answers them
                for r in to_run[name]:
                    if (r.deadline_s is not None
                            and t_done > r.arrival_s + r.deadline_s):
                        # Timeout abort: the traversal ran (and its
                        # result is cached), but the answer is late.
                        self._reject(report, r, "deadline")
                    else:
                        self._complete(report, r, t_done, "batched",
                                       answered[(name, r.root)])

    def _answer_graph(self, name: str, reqs: list[Request],
                      answered: dict[tuple[str, int], int]) -> int:
        """Traverse one graph's misses, resuming a crashed batch if any.

        Returns the number of traversals run.  Raises
        :class:`~repro.errors.ProcessCrashError` when the store's fault
        plan injects a crash mid-batch.
        """
        roots = sorted({r.root for r in reqs})
        rootset = set(roots)
        engine = self.engine_for(name)
        # Duplicate roots share one traversal; the traversal runs under
        # the first-admitted request's trace.
        trace_ids: dict[int, str] = {}
        for r in reqs:
            trace_ids.setdefault(int(r.root), self._trace_id(r))
        results = []
        remaining = roots
        restored = self._resume.pop(name, None)
        if restored is not None:
            # Watchdog path: re-enter the checkpointed traversal on the
            # (fresh) engine instead of restarting from the roots.
            hook = self._checkpoint_hook(name, self._managers[name])
            resumable = [q for q in restored.queries if q.root in rootset]
            if resumable:
                results.extend(
                    engine.resume_batch(resumable, checkpointer=hook)
                )
            remaining = sorted(rootset - {q.root for q in resumable})
        if remaining:
            hook = None
            if self.checkpoint_every > 0:
                mgr = self._fresh_manager(name)
                if mgr is not None:
                    hook = self._checkpoint_hook(name, mgr)
            results.extend(engine.run_batch(
                remaining, checkpointer=hook, trace_ids=trace_ids
            ))
        version = getattr(self.catalog.get(name), "version", 0)
        for res in results:
            self.cache.put(name, res.root, res.parent, res.traversed_edges,
                           version=version)
            answered[(name, res.root)] = res.traversed_edges
        self._crash_attempts.pop(name, None)
        return len(results)

    # -- crash recovery --------------------------------------------------------

    def _fresh_manager(self, name: str) -> CheckpointManager | None:
        """A new checkpoint chain for one batch over graph ``name``."""
        store = self.catalog.get(name).store
        if store is None:
            return None
        self._batch_seq += 1
        mgr = CheckpointManager(
            store,
            run_id=f"serve-{name}-b{self._batch_seq}",
            every=self.checkpoint_every,
            obs=self.obs,
        )
        self._managers[name] = mgr
        return mgr

    def _checkpoint_hook(self, name: str, mgr: CheckpointManager):
        """The per-round hook: persist an epoch, then maybe crash."""
        store = self.catalog.get(name).store
        clock = self.catalog.clock
        obs = self.obs

        def hook(queries, rounds: int) -> None:
            if rounds % mgr.every == 0 and any(q.active for q in queries):
                mgr.save([QuerySnapshot(
                    key=name,
                    root=q.root,
                    level=q.level,
                    direction=q.direction.value,
                    prev_frontier=q.prev_frontier,
                    visited_deg_sum=q.visited_deg_sum,
                    parent=q.state.parent,
                    frontier_queue=q.state.frontier_queue,
                ) for q in queries])
            injector = store.injector if store is not None else None
            now = clock.now()
            if injector is not None and injector.crash_due(now, rounds - 1):
                if injector.plan.crash_torn:
                    mgr.corrupt_last()
                obs.counter(M_REC_CRASHES).inc()
                obs.event(
                    "recovery.crash", graph=name, round=rounds - 1, t=now
                )
                raise ProcessCrashError(
                    f"injected crash in batch over {name!r} after round "
                    f"{rounds - 1} at t={now:.6f}s",
                    crashed_at_s=now,
                    level=rounds - 1,
                )

        return hook

    def _recover(self, name: str, reqs: list[Request],
                 queue: AdmissionQueue, report: ServeReport) -> None:
        """Watchdog: restart the engine, reload the checkpoint, requeue.

        The in-flight requests go back to the *head* of the admission
        queue (original order and fairness position preserved); the next
        batch that picks them up resumes from the restored checkpoint —
        or, when no epoch survived (crash before the first checkpoint,
        or a torn-only chain), simply reruns from the roots, which the
        deterministic engines make bit-identical anyway.
        """
        report.n_crashes += 1
        attempts = self._crash_attempts.get(name, 0) + 1
        self._crash_attempts[name] = attempts
        if attempts > self.max_retries:
            raise ProcessCrashError(
                f"graph {name!r} crashed {attempts} times; "
                f"retry budget ({self.max_retries}) exhausted"
            )
        obs = self.obs
        clock = self.catalog.clock
        # Watchdog restart: the next engine_for() builds a clean engine.
        self._engines.pop(name, None)
        obs.counter(M_REC_WATCHDOG).inc()
        report.n_watchdog_restarts += 1
        # Exponential backoff with deterministic seeded jitter.
        delay = self.backoff_base_s * self.backoff_factor ** (attempts - 1)
        delay *= 0.5 + float(self._retry_rng.random())
        with obs.span("serve.retry", graph=name, attempt=attempts,
                      delay_s=delay):
            clock.advance(delay)
            obs.counter(M_REC_RETRIES).inc()
            report.n_retries += 1
        mgr = self._managers.get(name)
        if mgr is not None:
            restored = load_run(mgr.dir)
            obs.counter(M_REC_RESTORES).inc()
            if restored.n_torn:
                obs.counter(M_REC_TORN_EPOCHS).inc(restored.n_torn)
            if restored.epoch >= 0:
                mgr.adopt(restored)
                self._resume[name] = restored
                # Stale-read guard: answers cached after the checkpoint
                # reflect work the rollback discarded.
                report.stale_invalidated += self.cache.invalidate_stale(
                    name, restored.clock_s
                )
        queue.requeue(reqs)
        obs.counter(M_REC_REQUEUES).inc(len(reqs))
        report.n_requeued += len(reqs)
        obs.event("recovery.requeue", graph=name, n=len(reqs))

    def __repr__(self) -> str:
        return (
            f"BFSServer(batch={self.batch_size}, "
            f"queue={self.queue_capacity}, cache={self.cache!r})"
        )
