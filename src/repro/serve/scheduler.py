"""Deterministic request admission and fair batch formation.

The serving loop runs entirely on the simulated clock, so scheduling must
be a pure function of (arrival order, queue state) — no wall-clock, no
thread races.  :class:`AdmissionQueue` is the backpressure point: a
bounded buffer that **rejects** (rather than queues unboundedly) when the
traversal engine falls behind, with per-reason rejection counts the
operator can alarm on.  Batch formation is round-robin across per-tenant
FIFO sub-queues, so one chatty tenant cannot starve the others of
traversal slots — each batch takes at most ``⌈B / active tenants⌉``
requests from any single tenant before cycling.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.serve.workload import Request

__all__ = ["RejectionStats", "AdmissionQueue"]


@dataclass
class RejectionStats:
    """Backpressure accounting: what was shed, and why.

    ``deadline`` counts requests aborted because their per-request
    latency budget expired before (or while) they could be answered.
    """

    queue_full: int = 0
    degraded: int = 0
    deadline: int = 0
    by_tenant: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All rejected requests."""
        return self.queue_full + self.degraded + self.deadline

    def record(self, request: Request, reason: str) -> None:
        """Count one rejection under ``reason``."""
        if reason == "queue_full":
            self.queue_full += 1
        elif reason == "degraded":
            self.degraded += 1
        elif reason == "deadline":
            self.deadline += 1
        else:
            raise ConfigurationError(f"unknown rejection reason {reason!r}")
        self.by_tenant[request.tenant] = (
            self.by_tenant.get(request.tenant, 0) + 1
        )


class AdmissionQueue:
    """Bounded admission buffer with per-tenant FIFO fairness.

    Parameters
    ----------
    capacity:
        Maximum queued requests across all tenants; :meth:`offer` returns
        ``False`` (caller rejects) once full.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"admission queue capacity must be positive: {capacity}"
            )
        self.capacity = int(capacity)
        # Tenant -> FIFO of its queued requests; insertion order of the
        # OrderedDict is the round-robin order (first-seen tenant first).
        self._tenants: OrderedDict[str, deque[Request]] = OrderedDict()
        self._depth = 0
        self._rr_offset = 0

    @property
    def depth(self) -> int:
        """Requests currently queued."""
        return self._depth

    def offer(self, request: Request) -> bool:
        """Enqueue ``request``; ``False`` when the queue is full."""
        if self._depth >= self.capacity:
            return False
        self._tenants.setdefault(request.tenant, deque()).append(request)
        self._depth += 1
        return True

    def requeue(self, requests: list[Request]) -> None:
        """Put crashed-batch requests back at the *head* of their queues.

        ``requests`` must be in their original admission order.  Each
        tenant's slice is pushed back onto the front of that tenant's
        FIFO, so a recovered request keeps its place ahead of everything
        admitted after it, and the tenant keeps its round-robin position
        (tenants are never removed from the rotation, only drained).
        Capacity is deliberately bypassed: these requests were already
        admitted once, and crash recovery must not shed admitted work —
        at-most-once completion is enforced downstream by the server.
        """
        by_tenant: dict[str, list[Request]] = {}
        for r in requests:
            by_tenant.setdefault(r.tenant, []).append(r)
        for tenant, rs in by_tenant.items():
            q = self._tenants.setdefault(tenant, deque())
            for r in reversed(rs):
                q.appendleft(r)
            self._depth += len(rs)

    def next_batch(self, batch_size: int) -> list[Request]:
        """Dequeue up to ``batch_size`` requests, round-robin per tenant.

        Each pass takes one request from every non-empty tenant queue in
        a rotating order (the rotation point advances between batches so
        no tenant permanently enjoys first pick of a short batch).
        """
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch size must be positive: {batch_size}"
            )
        batch: list[Request] = []
        start_offset = self._rr_offset
        self._rr_offset += 1
        while len(batch) < batch_size and self._depth > 0:
            names = [t for t, q in self._tenants.items() if q]
            start = start_offset % len(names)
            took_any = False
            for i in range(len(names)):
                if len(batch) >= batch_size:
                    break
                tenant = names[(start + i) % len(names)]
                q = self._tenants[tenant]
                if q:
                    batch.append(q.popleft())
                    self._depth -= 1
                    took_any = True
            if not took_any:  # pragma: no cover - depth>0 implies progress
                break
        return batch

    def __repr__(self) -> str:
        return f"AdmissionQueue({self._depth}/{self.capacity})"
