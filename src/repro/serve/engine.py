"""Batched multi-source BFS: B queries, one pass over the device.

The measurable win of this engine is **device-read amplification**: B
independent semi-external BFS runs each fetch the forward graph's 4 KB
chunks for their own frontier, so the device serves every hot chunk up to
B times.  Batching coalesces the queries into one traversal that, per
level, gathers the **union** of the top-down frontiers once per NUMA
shard — :meth:`~repro.semiext.storage.NVMStore.charge` already dedups
pages within a batch, so a chunk shared by any number of in-flight
queries is read (and charged to :class:`~repro.semiext.iostats.IoStats`)
exactly once.  NVM bytes per query drop from O(B) toward O(1) as overlap
grows — the serving-time generalization of the paper's §V device-traffic
minimization.

Correctness invariant — **batching never changes an answer**: each query
keeps its own :class:`~repro.bfs.state.BFSState`, its own α/β policy and
its own per-level direction decision driven only by that query's frontier
history.  The shared fetch is an I/O optimization below the algorithm:
per query, the engine selects its frontier's row segments out of the
union gather in the same order the unbatched scan would have produced,
then applies the identical first-parent-wins reduction.  The parent tree
of every query is therefore bit-identical to an unbatched run (pinned by
``tests/test_serve_engine.py`` and ``benchmarks/bench_serve_batching.py``).

Fault behaviour mirrors :class:`~repro.bfs.semi_external.SemiExternalBFS`:
device charges apply before any discovery commits, so a mid-level
:class:`~repro.errors.DeviceFailedError` degrades the whole batch to
bottom-up-only traversal on the in-DRAM backward graph, mid-flight, with
no query losing state.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottomup import bottom_up_step
from repro.bfs.metrics import BFSResult, Direction, LevelTrace
from repro.bfs.policies import PolicyInputs
from repro.bfs.state import BFSState
from repro.bfs.topdown import gather_adjacency
from repro.csr.io import ExternalCSR
from repro.errors import ConfigurationError, DeviceFailedError
from repro.obs.schema import (
    M_BFS_DISCOVERED,
    M_BFS_EDGES,
    M_BFS_LEVELS,
    M_BFS_RUNS,
    M_BFS_TRAVERSED,
    M_SERVE_ROWS_FETCHED,
    M_SERVE_ROWS_REQUESTED,
)
from repro.obs.session import Observability
from repro.serve.catalog import PinnedGraph
from repro.util.gather import concat_ranges
from repro.util.timer import Timer

__all__ = ["BatchedBFS"]


class _Query:
    """Per-query traversal state inside one batch (private)."""

    def __init__(self, graph: PinnedGraph, root: int) -> None:
        self.root = int(root)
        self.state = BFSState(graph.n_vertices, graph.topology, root)
        self.policy = graph.make_policy()
        self.policy.reset()
        self.direction = Direction.TOP_DOWN
        self.prev_frontier = 0
        self.visited_deg_sum = int(graph.degrees[root])
        self.level = 0
        self.traces: list[LevelTrace] = []

    @classmethod
    def restore(cls, graph: PinnedGraph, snap) -> "_Query":
        """Rebuild mid-traversal state from a restored checkpoint query.

        ``snap`` is a :class:`~repro.recovery.checkpoint.RestoredQuery`
        (duck-typed to avoid the import).  The α/β policy is stateless
        between levels, so a fresh, reset policy plus the restored cursor
        fields replays the remaining levels bit-identically.
        """
        q = cls.__new__(cls)
        q.root = int(snap.root)
        q.state = BFSState.restore(
            graph.n_vertices,
            graph.topology,
            snap.root,
            snap.parent,
            snap.frontier_queue,
        )
        q.policy = graph.make_policy()
        q.policy.reset()
        q.direction = Direction(snap.direction)
        q.prev_frontier = int(snap.prev_frontier)
        q.visited_deg_sum = int(snap.visited_deg_sum)
        q.level = int(snap.level)
        q.traces = []
        return q

    @property
    def active(self) -> bool:
        return self.state.frontier_size > 0


class BatchedBFS:
    """Coalesced execution of up to B concurrent BFS queries.

    Parameters
    ----------
    graph:
        The pinned catalog graph every query in a batch runs against.
    obs:
        Observability session; ``serve.rows_*`` amortization counters and
        a ``serve.traversal`` span per batch land here, alongside the
        usual ``bfs.*`` series (labelled ``engine="BatchedBFS"``).
    """

    def __init__(self, graph: PinnedGraph, obs: Observability | None = None) -> None:
        self.graph = graph
        self.obs = obs if obs is not None else graph.obs
        self.obs.bind_clock(graph.clock)
        self._degraded = False
        # Plain-Python mirrors of the serve.rows_* counters so callers
        # can compute the amortization ratio without an obs registry.
        self.rows_requested = 0
        self.rows_fetched = 0

    @property
    def degraded_mode(self) -> bool:
        """Whether the engine (or the device circuit) forces bottom-up."""
        return self._degraded or self.graph.circuit_open

    def run_batch(
        self,
        roots: list[int],
        max_levels: int | None = None,
        checkpointer=None,
        trace_ids: dict[int, str] | None = None,
    ) -> list[BFSResult]:
        """Traverse from every root concurrently; one result per root.

        ``roots`` must be duplicate-free (the server dedups upstream —
        duplicate queries share one traversal by construction).
        ``max_levels`` is the tests' safety valve, as in
        :meth:`repro.bfs.hybrid.HybridBFS.run`.

        ``checkpointer`` is the batch analogue of the single-engine
        level-boundary hook: called as ``checkpointer(queries, rounds)``
        after every completed round with *all* per-query states (each
        exposing ``root``/``level``/``direction``/``prev_frontier``/
        ``visited_deg_sum``/``state``), so the serve tier can persist an
        epoch and inject crashes.

        ``trace_ids`` maps each root to its admission-assigned trace id;
        the shared ``serve.traversal`` span records the whole set (one
        traversal serves many traces — that fan-in is the batching
        story, and the span shows exactly which requests shared it).
        """
        if len(set(int(r) for r in roots)) != len(roots):
            raise ConfigurationError("batch roots must be unique")
        if not roots:
            return []
        queries = [_Query(self.graph, r) for r in roots]
        for _ in queries:
            self.obs.counter(M_BFS_RUNS, engine="BatchedBFS").inc()
        return self._execute(
            queries, 0, max_levels, checkpointer, trace_ids=trace_ids
        )

    def resume_batch(
        self,
        restored: list,
        max_levels: int | None = None,
        checkpointer=None,
    ) -> list[BFSResult]:
        """Re-enter a batch from restored checkpoint queries.

        ``restored`` holds
        :class:`~repro.recovery.checkpoint.RestoredQuery` snapshots (one
        per query, already-finished ones included — their empty frontier
        just yields the recorded tree).  The continued traversal is
        bit-identical to one that never crashed; traces cover the
        resumed rounds only, and ``bfs.runs_total`` is not re-counted.
        """
        if not restored:
            return []
        queries = [_Query.restore(self.graph, snap) for snap in restored]
        rounds = max(q.level for q in queries)
        return self._execute(queries, rounds, max_levels, checkpointer)

    def _execute(
        self,
        queries: list[_Query],
        rounds: int,
        max_levels: int | None,
        checkpointer,
        trace_ids: dict[int, str] | None = None,
    ) -> list[BFSResult]:
        graph = self.graph
        clock = graph.clock
        obs = self.obs
        wall = Timer()
        t_batch0 = clock.now()
        span_attrs: dict[str, object] = {}
        if trace_ids:
            joined = ",".join(
                trace_ids[q.root] for q in queries if q.root in trace_ids
            )
            if joined:
                span_attrs["trace_ids"] = joined
        with obs.span(
            "serve.traversal",
            graph=graph.name,
            queries=len(queries),
            **span_attrs,
        ), wall:
            while True:
                active = [q for q in queries if q.active]
                if not active:
                    break
                if max_levels is not None and rounds >= max_levels:
                    break
                self._run_round(active)
                rounds += 1
                if checkpointer is not None:
                    checkpointer(queries, rounds)
        t_batch1 = clock.now()
        results = []
        for q in queries:
            traversed = int(
                graph.degrees[q.state.parent >= 0].sum()
            ) // 2
            obs.counter(M_BFS_TRAVERSED).inc(traversed)
            results.append(BFSResult(
                parent=q.state.parent,
                root=q.root,
                traces=tuple(q.traces),
                traversed_edges=traversed,
                wall_time_s=wall.elapsed,
                modeled_time_s=t_batch1 - t_batch0,
            ))
        return results

    # -- one synchronized round (each active query advances one level) ---------

    def _run_round(self, active: list[_Query]) -> None:
        graph = self.graph
        clock = graph.clock
        t0 = clock.now()
        for q in active:
            frontier_edges = int(graph.degrees[q.state.frontier_queue].sum())
            decided = q.policy.decide(PolicyInputs(
                level=q.level,
                current=q.direction,
                n_frontier=q.state.frontier_size,
                n_frontier_prev=q.prev_frontier,
                n_all=graph.n_vertices,
                frontier_edges=frontier_edges,
                unvisited_edges=(
                    int(graph.degrees.sum()) - q.visited_deg_sum
                ),
                device_health=graph.device_health(),
            ))
            q.direction = (
                Direction.BOTTOM_UP if self.degraded_mode else decided
            )
        td = [q for q in active if q.direction is Direction.TOP_DOWN]
        bu = [q for q in active if q.direction is Direction.BOTTOM_UP]
        td_scans: dict[int, tuple[int, int]] = {}
        if td:
            try:
                td_scans = self._top_down_shared(td)
            except DeviceFailedError:
                # Charges already paid are on the clock; no discovery was
                # committed, so the whole round re-runs bottom-up —
                # the batch-wide analogue of SemiExternalBFS degradation.
                self._degraded = True
                if graph.store is not None:
                    graph.store.resilience.degraded_levels += 1
                for q in td:
                    q.direction = Direction.BOTTOM_UP
                bu = bu + td
                td = []
        for q in bu:
            self._bottom_up_one(q)
        # Per-query promotion, DRAM charges and traces (shared round time).
        obs = self.obs
        for q in active:
            if q.direction is Direction.TOP_DOWN:
                next_queue, scanned_dram, scanned_nvm = self._commit_td(
                    q, td_scans
                )
            else:
                next_queue, scanned_dram, scanned_nvm = q._bu_outcome
                del q._bu_outcome
            frontier_size = q.state.frontier_size
            if graph.cost_model is not None:
                # NVM-fetched probes already entered the queueing model as
                # think time; charge only DRAM-resident work (the same
                # split SemiExternalBFS._charge_level makes).
                clock.advance(graph.cost_model.level_time_s(
                    edges_scanned=scanned_dram,
                    frontier_size=frontier_size,
                    next_size=int(next_queue.size),
                ))
            dirname = q.direction.value
            obs.counter(M_BFS_LEVELS, direction=dirname).inc()
            obs.counter(M_BFS_EDGES, direction=dirname, medium="dram").inc(
                scanned_dram
            )
            if scanned_nvm:
                obs.counter(M_BFS_EDGES, direction=dirname, medium="nvm").inc(
                    scanned_nvm
                )
            obs.counter(M_BFS_DISCOVERED, direction=dirname).inc(
                int(next_queue.size)
            )
            q.traces.append(LevelTrace(
                level=q.level,
                direction=q.direction,
                frontier_size=frontier_size,
                next_size=int(next_queue.size),
                edges_scanned=scanned_dram + scanned_nvm,
                wall_time_s=0.0,
                modeled_time_s=clock.now() - t0,
                edges_scanned_nvm=scanned_nvm,
                degraded=self.degraded_mode,
            ))
            q.visited_deg_sum += int(graph.degrees[next_queue].sum())
            q.prev_frontier = frontier_size
            q.state.promote_next(next_queue)
            q.level += 1

    # -- shared top-down -------------------------------------------------------

    def _top_down_shared(self, td: list[_Query]) -> dict:
        """Gather the union frontier once per shard; no state mutation.

        Returns per-query candidate discoveries keyed ``id(query)`` →
        list of per-shard ``(winners, parents, scanned)``; commit happens
        after every shard's charge has been applied (so a device failure
        leaves all query states untouched).
        """
        graph = self.graph
        obs = self.obs
        think = graph.think_time_s()
        frontiers = [q.state.frontier_queue for q in td]
        if len(td) == 1:
            union = frontiers[0]
        else:
            union = np.unique(np.concatenate(frontiers))
        scans: dict[int, list] = {id(q): [] for q in td}
        n_shards = len(graph.top_down_shards())
        requested = sum(int(f.size) for f in frontiers) * n_shards
        fetched = int(union.size) * n_shards
        self.rows_requested += requested
        self.rows_fetched += fetched
        obs.counter(M_SERVE_ROWS_REQUESTED).inc(requested)
        obs.counter(M_SERVE_ROWS_FETCHED).inc(fetched)
        for shard in graph.top_down_shards():
            if isinstance(shard, ExternalCSR):
                neighbors, counts, charges = shard.gather_rows_deferred(union)
                for charge in charges:
                    charge.apply(think)  # may raise DeviceFailedError
            else:
                neighbors, counts = gather_adjacency(shard, union)
            seg_starts = np.zeros(counts.size, dtype=np.int64)
            if counts.size > 1:
                np.cumsum(counts[:-1], out=seg_starts[1:])
            for q in td:
                frontier = q.state.frontier_queue
                if len(td) == 1:
                    mine_neighbors = neighbors
                    mine_counts = counts
                else:
                    idx = np.searchsorted(union, frontier)
                    mine_counts = counts[idx]
                    mine_neighbors = neighbors[
                        concat_ranges(seg_starts[idx], mine_counts)
                    ]
                scans[id(q)].append(self._scan_candidates(
                    q, frontier, mine_neighbors, mine_counts
                ))
        return scans

    @staticmethod
    def _scan_candidates(q: _Query, frontier, neighbors, counts):
        """The unbatched first-parent-wins reduction, per query per shard."""
        scanned = int(counts.sum()) if counts.size else 0
        empty = np.empty(0, dtype=np.int64)
        if neighbors.size == 0:
            return empty, empty, scanned
        parents = np.repeat(frontier, counts)
        unvisited = ~q.state.visited.test_many(neighbors)
        if not unvisited.any():
            return empty, empty, scanned
        cand_w = neighbors[unvisited]
        cand_v = parents[unvisited]
        winners, first_idx = np.unique(cand_w, return_index=True)
        return winners, cand_v[first_idx].copy(), scanned

    def _commit_td(self, q: _Query, td_scans: dict):
        """Install one query's per-shard discoveries (shard order)."""
        next_parts: list[np.ndarray] = []
        scanned_nvm = 0
        scanned_dram = 0
        for winners, parents, scanned in td_scans[id(q)]:
            if self.graph.semi_external:
                scanned_nvm += scanned
            else:
                scanned_dram += scanned
            if winners.size:
                q.state.discover(winners, parents)
                next_parts.append(winners)
        if next_parts:
            next_queue = np.concatenate(next_parts)
            next_queue.sort()
        else:
            next_queue = np.empty(0, dtype=np.int64)
        return next_queue, scanned_dram, scanned_nvm

    # -- per-query bottom-up ---------------------------------------------------

    def _bottom_up_one(self, q: _Query) -> None:
        """One query's bottom-up level on the in-DRAM backward graph."""
        q._bu_outcome = bottom_up_step(self.graph.scanners, q.state)

    def __repr__(self) -> str:
        return f"BatchedBFS({self.graph.name!r})"
