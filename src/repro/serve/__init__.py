"""Concurrent BFS query serving over the semi-external engine.

The paper treats BFS as a batch job: one root, one run, one device
budget.  This package generalizes its §V device-traffic economics to the
*online* setting a reachability service faces — many concurrent queries
against a few resident graphs, where the forward graph's NVM chunks are
the shared, expensive resource.  The pieces:

- :mod:`~repro.serve.catalog` — build and pin named graphs once, serve
  them many times through shared read handles.
- :mod:`~repro.serve.workload` — Zipf-root / Poisson-arrival synthetic
  workloads and JSONL trace replay, fully deterministic per seed.
- :mod:`~repro.serve.scheduler` — bounded admission with per-tenant
  round-robin fairness and explicit backpressure rejection.
- :mod:`~repro.serve.engine` — batched multi-source BFS that gathers the
  **union** of top-down frontiers once per level, so a chunk wanted by B
  queries is read and charged once instead of B times.
- :mod:`~repro.serve.results` — LRU + TTL result cache keyed
  ``(graph, root)``.
- :mod:`~repro.serve.server` — the event loop tying it together on the
  simulated clock, with fault-aware cache-only degradation.
"""

from repro.serve.catalog import GraphCatalog, GraphHandle, PinnedGraph
from repro.serve.engine import BatchedBFS
from repro.serve.results import CachedResult, ResultCache
from repro.serve.scheduler import AdmissionQueue, RejectionStats
from repro.serve.server import BFSServer, ServedRequest, ServeReport
from repro.serve.workload import (
    Request,
    WorkloadSpec,
    generate_workload,
    load_trace,
    save_trace,
)

__all__ = [
    "GraphCatalog",
    "GraphHandle",
    "PinnedGraph",
    "BatchedBFS",
    "CachedResult",
    "ResultCache",
    "AdmissionQueue",
    "RejectionStats",
    "BFSServer",
    "ServedRequest",
    "ServeReport",
    "Request",
    "WorkloadSpec",
    "generate_workload",
    "load_trace",
    "save_trace",
]
