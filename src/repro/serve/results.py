"""LRU + TTL result cache for served BFS queries.

Zipf-skewed root popularity means a small cache of parent trees absorbs a
large share of the query stream without touching the graph at all — the
cheapest possible form of the paper's "touch the slow device as little as
possible" economics, one layer above the page cache.  Entries are keyed
``(graph, root)``; expiry runs on the **simulated clock**, so cache
behaviour (and therefore every exported metric) is deterministic for a
given workload.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.schema import (
    M_SERVE_CACHE_EVICTIONS,
    M_SERVE_CACHE_HITS,
    M_SERVE_CACHE_MISSES,
)
from repro.obs.session import NULL, Observability
from repro.semiext.clock import SimulatedClock

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """A cached query answer: the parent tree and its TEPS numerator.

    ``version`` is the graph version the answer was computed at (0 for
    immutable graphs).  A lookup pinned to a newer version misses; the
    stale entry survives as raw material for incremental repair until a
    compaction prunes the batch history behind it (see
    :meth:`ResultCache.invalidate_versions`).
    """

    parent: np.ndarray
    traversed_edges: int
    stored_at_s: float
    version: int = 0


class ResultCache:
    """Bounded LRU cache of BFS results with optional TTL expiry.

    Parameters
    ----------
    capacity:
        Maximum resident entries; the least-recently-used entry is
        evicted on overflow.  ``0`` disables caching (every lookup
        misses), which is how the server runs cache-less benchmarks.
    ttl_s:
        Entry lifetime in simulated seconds; ``None`` never expires.
    clock:
        The simulated clock TTL expiry reads.
    obs:
        Observability session for the ``serve.cache_*`` counters.
    """

    def __init__(
        self,
        capacity: int,
        ttl_s: float | None = None,
        clock: SimulatedClock | None = None,
        obs: Observability | None = None,
    ) -> None:
        if capacity < 0:
            raise ConfigurationError(f"cache capacity must be >= 0: {capacity}")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError(f"cache TTL must be positive: {ttl_s}")
        self.capacity = int(capacity)
        self.ttl_s = ttl_s
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = obs if obs is not None else NULL
        self._entries: OrderedDict[tuple[str, int], CachedResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions_lru = 0
        self.evictions_ttl = 0
        self.evictions_stale = 0
        self.evictions_version = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, graph: str, root: int,
            version: int | None = None) -> CachedResult | None:
        """Look up ``(graph, root)``; counts a hit or a miss either way.

        With ``version`` given, an entry computed at a different graph
        version counts as a miss but is *kept* — the serve tier may
        still repair it incrementally (via :meth:`peek`) instead of
        recomputing from scratch.
        """
        key = (graph, int(root))
        entry = self._entries.get(key)
        if entry is not None and self.ttl_s is not None:
            if self.clock.now() - entry.stored_at_s > self.ttl_s:
                del self._entries[key]
                self.evictions_ttl += 1
                self.obs.counter(M_SERVE_CACHE_EVICTIONS, cause="ttl").inc()
                entry = None
        if entry is not None and version is not None \
                and entry.version != version:
            self.misses += 1
            self.obs.counter(M_SERVE_CACHE_MISSES).inc()
            return None
        if entry is None:
            self.misses += 1
            self.obs.counter(M_SERVE_CACHE_MISSES).inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.obs.counter(M_SERVE_CACHE_HITS).inc()
        return entry

    def peek(self, graph: str, root: int) -> CachedResult | None:
        """The resident entry regardless of version, without touching
        hit/miss accounting or LRU order (repair-path raw material)."""
        return self._entries.get((graph, int(root)))

    def put(self, graph: str, root: int, parent: np.ndarray,
            traversed_edges: int, version: int = 0) -> None:
        """Install (or refresh) the answer for ``(graph, root)``."""
        if self.capacity == 0:
            return
        key = (graph, int(root))
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions_lru += 1
            self.obs.counter(M_SERVE_CACHE_EVICTIONS, cause="lru").inc()
        self._entries[key] = CachedResult(
            parent=np.asarray(parent),
            traversed_edges=int(traversed_edges),
            stored_at_s=self.clock.now(),
            version=int(version),
        )

    def invalidate_stale(self, graph: str, as_of_s: float) -> int:
        """Drop ``graph`` entries stored *after* simulated time ``as_of_s``.

        The stale-read guard of crash recovery: when a graph resumes
        from a checkpoint taken at ``as_of_s``, any answer cached after
        that point was produced by work the rollback logically discarded
        and must not be served again.  Entries at or before the
        checkpoint are consistent and stay.  Returns the number dropped;
        each counts as a ``cause="stale"`` eviction.
        """
        stale = [
            key for key, entry in self._entries.items()
            if key[0] == graph and entry.stored_at_s > as_of_s
        ]
        for key in stale:
            del self._entries[key]
            self.evictions_stale += 1
            self.obs.counter(M_SERVE_CACHE_EVICTIONS, cause="stale").inc()
        return len(stale)

    def invalidate_versions(self, graph: str, before_version: int) -> int:
        """Drop ``graph`` entries with ``version < before_version``.

        The dropped-version guard of mutation compaction: once the batch
        history behind ``before_version`` is pruned, an older tree can
        never be repaired forward and serving it would answer against a
        graph that no longer exists.  Returns the number dropped; each
        counts as a ``cause="version"`` eviction.
        """
        doomed = [
            key for key, entry in self._entries.items()
            if key[0] == graph and entry.version < before_version
        ]
        for key in doomed:
            del self._entries[key]
            self.evictions_version += 1
            self.obs.counter(M_SERVE_CACHE_EVICTIONS, cause="version").inc()
        return len(doomed)

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.capacity} entries, "
            f"hit_rate={self.hit_rate:.1%})"
        )
