"""Synthetic query workloads and trace replay for the serving layer.

A serving workload is a list of timestamped BFS query requests.  The
generator models what a production reachability service sees (ROADMAP
north star): **Zipf-distributed roots** — a few hot vertices dominate,
exactly the skew that makes result caching and batched traversal pay —
and **Poisson arrivals** (exponential inter-arrival gaps) on the
simulated clock, spread across a handful of tenants.

Everything is deterministic: the same :class:`WorkloadSpec` (seed
included) always yields the same request list, and a generated workload
round-trips through :func:`save_trace` / :func:`load_trace` so recorded
traffic can be replayed bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng

__all__ = [
    "Request",
    "WorkloadSpec",
    "generate_workload",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class Request:
    """One BFS query: *who* wants the reachability tree of *which* root.

    Attributes
    ----------
    arrival_s:
        Arrival time on the simulated clock.
    tenant:
        Requesting tenant (fairness/accounting unit).
    graph:
        Name of the catalog graph the query runs against.
    root:
        BFS root vertex.
    deadline_s:
        Per-request latency budget in simulated seconds, relative to
        ``arrival_s``; a request not answered by
        ``arrival_s + deadline_s`` is aborted with a ``deadline``
        rejection.  ``None`` (the default) never expires.
    """

    arrival_s: float
    tenant: str
    graph: str
    root: int
    deadline_s: float | None = None


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload (CLI ``--workload`` syntax).

    The spec string is comma-separated ``key=value`` pairs, e.g.
    ``'n=200,rate=1000,zipf=1.2,tenants=4,pool=64,seed=7'``:

    =========  ==================================================
    ``n``      number of requests (default 200)
    ``rate``   mean arrival rate in requests per simulated second
    ``zipf``   Zipf exponent of the root popularity distribution
    ``tenants``  number of tenants issuing requests
    ``pool``   distinct candidate roots (the hottest vertices)
    ``seed``   workload RNG seed (defaults to the run seed)
    ``deadline``  per-request latency budget in simulated seconds
                  (default: no deadline)
    =========  ==================================================
    """

    n_requests: int = 200
    rate_rps: float = 1000.0
    zipf_s: float = 1.1
    n_tenants: int = 4
    root_pool: int = 64
    seed: int | None = None
    graph: str = "default"
    deadline_s: float | None = None

    _KEYS = {
        "n": "n_requests",
        "rate": "rate_rps",
        "zipf": "zipf_s",
        "tenants": "n_tenants",
        "pool": "root_pool",
        "seed": "seed",
        "deadline": "deadline_s",
    }

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ConfigurationError(
                f"workload needs at least one request, got n={self.n_requests}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got rate={self.rate_rps}"
            )
        if self.zipf_s <= 0:
            raise ConfigurationError(
                f"zipf exponent must be positive, got zipf={self.zipf_s}"
            )
        if self.n_tenants <= 0:
            raise ConfigurationError(
                f"need at least one tenant, got tenants={self.n_tenants}"
            )
        if self.root_pool <= 0:
            raise ConfigurationError(
                f"root pool must be positive, got pool={self.root_pool}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got deadline={self.deadline_s}"
            )

    @classmethod
    def parse(cls, spec: str) -> "WorkloadSpec":
        """Parse a ``--workload`` spec string.

        >>> WorkloadSpec.parse("n=10,zipf=1.5").n_requests
        10
        """
        kwargs: dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigurationError(
                    f"workload spec item {item!r} is not key=value"
                )
            key, _, raw = item.partition("=")
            key = key.strip()
            field = cls._KEYS.get(key)
            if field is None:
                raise ConfigurationError(
                    f"unknown workload key {key!r} "
                    f"(expected one of {sorted(cls._KEYS)})"
                )
            try:
                if field in ("rate_rps", "zipf_s", "deadline_s"):
                    kwargs[field] = float(raw)
                else:
                    kwargs[field] = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"workload key {key!r} needs a number, got {raw!r}"
                ) from None
        return cls(**kwargs)

    def with_seed(self, seed: int | None) -> "WorkloadSpec":
        """This spec with ``seed`` filled in when the spec left it unset."""
        if self.seed is not None or seed is None:
            return self
        return replace(self, seed=seed)


def generate_workload(spec: WorkloadSpec, degrees: np.ndarray) -> list[Request]:
    """Materialize the request list of ``spec`` against one graph.

    ``degrees`` are the graph's vertex degrees; the candidate root pool is
    the ``spec.root_pool`` highest-degree (hence non-isolated, hence
    interesting) vertices, and popularity follows rank :math:`^{-s}` —
    the classic Zipf skew of real query logs.
    """
    degrees = np.asarray(degrees)
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise ConfigurationError("graph has no non-isolated vertex to query")
    # Highest-degree vertices first; ties broken by vertex id (stable).
    order = np.argsort(-degrees[eligible], kind="stable")
    pool = eligible[order][: spec.root_pool]
    ranks = np.arange(1, pool.size + 1, dtype=np.float64)
    weights = ranks ** -spec.zipf_s
    weights /= weights.sum()

    rng = derive_rng(spec.seed, "serve", "workload")
    roots = rng.choice(pool, size=spec.n_requests, p=weights)
    gaps = rng.exponential(1.0 / spec.rate_rps, size=spec.n_requests)
    arrivals = np.cumsum(gaps)
    tenants = rng.integers(0, spec.n_tenants, size=spec.n_requests)
    return [
        Request(
            arrival_s=float(arrivals[i]),
            tenant=f"tenant{int(tenants[i])}",
            graph=spec.graph,
            root=int(roots[i]),
            deadline_s=spec.deadline_s,
        )
        for i in range(spec.n_requests)
    ]


def save_trace(requests: list[Request], path: str | Path) -> Path:
    """Write a request trace as JSONL (one request per line)."""
    path = Path(path)
    with path.open("w") as fh:
        for r in requests:
            rec = {
                "arrival_s": r.arrival_s,
                "tenant": r.tenant,
                "graph": r.graph,
                "root": r.root,
            }
            if r.deadline_s is not None:
                rec["deadline_s"] = r.deadline_s
            fh.write(json.dumps(rec) + "\n")
    return path


def load_trace(path: str | Path) -> list[Request]:
    """Read a trace written by :func:`save_trace` (strict, line-numbered)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path}: {exc}") from None
    requests: list[Request] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            deadline = rec.get("deadline_s")
            requests.append(Request(
                arrival_s=float(rec["arrival_s"]),
                tenant=str(rec["tenant"]),
                graph=str(rec["graph"]),
                root=int(rec["root"]),
                deadline_s=float(deadline) if deadline is not None else None,
            ))
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: not a trace record ({exc})"
            ) from None
    return requests
