"""Synthetic query workloads and trace replay for the serving layer.

A serving workload is a list of timestamped BFS query requests.  The
generator models what a production reachability service sees (ROADMAP
north star): **Zipf-distributed roots** — a few hot vertices dominate,
exactly the skew that makes result caching and batched traversal pay —
and **Poisson arrivals** (exponential inter-arrival gaps) on the
simulated clock, spread across a handful of tenants.

Everything is deterministic: the same :class:`WorkloadSpec` (seed
included) always yields the same request list, and a generated workload
round-trips through :func:`save_trace` / :func:`load_trace` so recorded
traffic can be replayed bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng

__all__ = [
    "Request",
    "MutationEvent",
    "WorkloadSpec",
    "generate_workload",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class Request:
    """One BFS query: *who* wants the reachability tree of *which* root.

    Attributes
    ----------
    arrival_s:
        Arrival time on the simulated clock.
    tenant:
        Requesting tenant (fairness/accounting unit).
    graph:
        Name of the catalog graph the query runs against.
    root:
        BFS root vertex.
    deadline_s:
        Per-request latency budget in simulated seconds, relative to
        ``arrival_s``; a request not answered by
        ``arrival_s + deadline_s`` is aborted with a ``deadline``
        rejection.  ``None`` (the default) never expires.
    """

    arrival_s: float
    tenant: str
    graph: str
    root: int
    deadline_s: float | None = None


@dataclass(frozen=True)
class MutationEvent:
    """One edge-mutation batch arriving in the request stream.

    The server applies it atomically between scheduling batches when the
    simulated clock reaches ``arrival_s``, bumping the target graph's
    version.  Edge pairs are explicit (not a seed reference) so a saved
    trace replays bit-for-bit regardless of who generated it.
    """

    arrival_s: float
    graph: str
    inserts: tuple[tuple[int, int], ...] = ()
    deletes: tuple[tuple[int, int], ...] = ()

    @property
    def n_mutations(self) -> int:
        """Total edge mutations (inserts plus deletes) in the event."""
        return len(self.inserts) + len(self.deletes)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload (CLI ``--workload`` syntax).

    The spec string is comma-separated ``key=value`` pairs, e.g.
    ``'n=200,rate=1000,zipf=1.2,tenants=4,pool=64,seed=7'``:

    =========  ==================================================
    ``n``      number of requests (default 200)
    ``rate``   mean arrival rate in requests per simulated second
    ``zipf``   Zipf exponent of the root popularity distribution
    ``tenants``  number of tenants issuing requests
    ``pool``   distinct candidate roots (the hottest vertices)
    ``seed``   workload RNG seed (defaults to the run seed)
    ``deadline``  per-request latency budget in simulated seconds
                  (default: no deadline)
    ``mut_rate``  edge-mutation batches per simulated second
                  (default 0: a static graph)
    ``mut_ins``   edge inserts per mutation batch (default 4)
    ``mut_del``   edge deletes per mutation batch (default 4)
    =========  ==================================================
    """

    n_requests: int = 200
    rate_rps: float = 1000.0
    zipf_s: float = 1.1
    n_tenants: int = 4
    root_pool: int = 64
    seed: int | None = None
    graph: str = "default"
    deadline_s: float | None = None
    mut_rate: float = 0.0
    mut_inserts: int = 4
    mut_deletes: int = 4

    _KEYS = {
        "n": "n_requests",
        "rate": "rate_rps",
        "zipf": "zipf_s",
        "tenants": "n_tenants",
        "pool": "root_pool",
        "seed": "seed",
        "deadline": "deadline_s",
        "mut_rate": "mut_rate",
        "mut_ins": "mut_inserts",
        "mut_del": "mut_deletes",
    }

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ConfigurationError(
                f"workload needs at least one request, got n={self.n_requests}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got rate={self.rate_rps}"
            )
        if self.zipf_s <= 0:
            raise ConfigurationError(
                f"zipf exponent must be positive, got zipf={self.zipf_s}"
            )
        if self.n_tenants <= 0:
            raise ConfigurationError(
                f"need at least one tenant, got tenants={self.n_tenants}"
            )
        if self.root_pool <= 0:
            raise ConfigurationError(
                f"root pool must be positive, got pool={self.root_pool}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got deadline={self.deadline_s}"
            )
        if self.mut_rate < 0:
            raise ConfigurationError(
                f"mutation rate must be >= 0, got mut_rate={self.mut_rate}"
            )
        if self.mut_inserts < 0 or self.mut_deletes < 0:
            raise ConfigurationError(
                f"mutation batch sizes must be >= 0, got "
                f"mut_ins={self.mut_inserts}, mut_del={self.mut_deletes}"
            )
        if self.mut_rate > 0 and self.mut_inserts + self.mut_deletes == 0:
            raise ConfigurationError(
                "mut_rate > 0 needs mut_ins or mut_del to be positive"
            )

    @classmethod
    def parse(cls, spec: str) -> "WorkloadSpec":
        """Parse a ``--workload`` spec string.

        >>> WorkloadSpec.parse("n=10,zipf=1.5").n_requests
        10
        """
        kwargs: dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigurationError(
                    f"workload spec item {item!r} is not key=value"
                )
            key, _, raw = item.partition("=")
            key = key.strip()
            field = cls._KEYS.get(key)
            if field is None:
                raise ConfigurationError(
                    f"unknown workload key {key!r} "
                    f"(expected one of {sorted(cls._KEYS)})"
                )
            try:
                if field in ("rate_rps", "zipf_s", "deadline_s", "mut_rate"):
                    kwargs[field] = float(raw)
                else:
                    kwargs[field] = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"workload key {key!r} needs a number, got {raw!r}"
                ) from None
        return cls(**kwargs)

    def with_seed(self, seed: int | None) -> "WorkloadSpec":
        """This spec with ``seed`` filled in when the spec left it unset."""
        if self.seed is not None or seed is None:
            return self
        return replace(self, seed=seed)


def generate_workload(
    spec: WorkloadSpec,
    degrees: np.ndarray,
    csr=None,
) -> list:
    """Materialize the request list of ``spec`` against one graph.

    ``degrees`` are the graph's vertex degrees; the candidate root pool is
    the ``spec.root_pool`` highest-degree (hence non-isolated, hence
    interesting) vertices, and popularity follows rank :math:`^{-s}` —
    the classic Zipf skew of real query logs.

    With ``mut_rate > 0`` the stream also carries
    :class:`MutationEvent`\\ s — Poisson arrivals of seeded edge
    insert/delete batches drawn against the evolving graph (``csr``, the
    graph's current CSR, is then required).  The request sub-stream is
    byte-identical to the same spec with ``mut_rate=0``: mutations draw
    from an independent rng path, so turning them on never perturbs the
    query timeline.  The combined list is sorted by arrival time.
    """
    degrees = np.asarray(degrees)
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise ConfigurationError("graph has no non-isolated vertex to query")
    # Highest-degree vertices first; ties broken by vertex id (stable).
    order = np.argsort(-degrees[eligible], kind="stable")
    pool = eligible[order][: spec.root_pool]
    ranks = np.arange(1, pool.size + 1, dtype=np.float64)
    weights = ranks ** -spec.zipf_s
    weights /= weights.sum()

    rng = derive_rng(spec.seed, "serve", "workload")
    roots = rng.choice(pool, size=spec.n_requests, p=weights)
    gaps = rng.exponential(1.0 / spec.rate_rps, size=spec.n_requests)
    arrivals = np.cumsum(gaps)
    tenants = rng.integers(0, spec.n_tenants, size=spec.n_requests)
    requests: list = [
        Request(
            arrival_s=float(arrivals[i]),
            tenant=f"tenant{int(tenants[i])}",
            graph=spec.graph,
            root=int(roots[i]),
            deadline_s=spec.deadline_s,
        )
        for i in range(spec.n_requests)
    ]
    if spec.mut_rate <= 0:
        return requests
    if csr is None:
        raise ConfigurationError(
            "mut_rate > 0 needs the graph's CSR to draw mutations against"
        )
    from repro.graphmut.stream import generate_stream

    mut_rng = derive_rng(spec.seed, "serve", "mutations", "arrivals")
    horizon = float(arrivals[-1])
    mut_arrivals: list[float] = []
    t = float(mut_rng.exponential(1.0 / spec.mut_rate))
    while t < horizon:
        mut_arrivals.append(t)
        t += float(mut_rng.exponential(1.0 / spec.mut_rate))
    stream = generate_stream(
        csr, len(mut_arrivals), spec.mut_inserts, spec.mut_deletes,
        spec.seed, "serve", "mutations", "edges",
    )
    for when, batch in zip(mut_arrivals, stream):
        requests.append(MutationEvent(
            arrival_s=when,
            graph=spec.graph,
            inserts=batch.inserts,
            deletes=batch.deletes,
        ))
    requests.sort(key=lambda r: r.arrival_s)
    return requests


def save_trace(requests: list, path: str | Path) -> Path:
    """Write a mixed request/mutation trace as JSONL (one event per line).

    Mutation events carry ``"kind": "mutation"`` and their explicit edge
    lists; request records stay exactly the pre-dynamic format (no
    ``kind`` field), so old traces and old readers interoperate.
    """
    path = Path(path)
    with path.open("w") as fh:
        for r in requests:
            if isinstance(r, MutationEvent):
                rec = {
                    "kind": "mutation",
                    "arrival_s": r.arrival_s,
                    "graph": r.graph,
                    "inserts": [list(e) for e in r.inserts],
                    "deletes": [list(e) for e in r.deletes],
                }
            else:
                rec = {
                    "arrival_s": r.arrival_s,
                    "tenant": r.tenant,
                    "graph": r.graph,
                    "root": r.root,
                }
                if r.deadline_s is not None:
                    rec["deadline_s"] = r.deadline_s
            fh.write(json.dumps(rec) + "\n")
    return path


def load_trace(path: str | Path) -> list:
    """Read a trace written by :func:`save_trace` (strict, line-numbered)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path}: {exc}") from None
    requests: list = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            kind = rec.get("kind", "request")
            if kind == "mutation":
                requests.append(MutationEvent(
                    arrival_s=float(rec["arrival_s"]),
                    graph=str(rec["graph"]),
                    inserts=tuple(
                        (int(u), int(v)) for u, v in rec.get("inserts", ())
                    ),
                    deletes=tuple(
                        (int(u), int(v)) for u, v in rec.get("deletes", ())
                    ),
                ))
                continue
            if kind != "request":
                raise ValueError(f"unknown record kind {kind!r}")
            deadline = rec.get("deadline_s")
            requests.append(Request(
                arrival_s=float(rec["arrival_s"]),
                tenant=str(rec["tenant"]),
                graph=str(rec["graph"]),
                root=int(rec["root"]),
                deadline_s=float(deadline) if deadline is not None else None,
            ))
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: not a trace record ({exc})"
            ) from None
    return requests
