"""The graph catalog: build a named graph once, serve it many times.

An offline pipeline run pays graph construction and NVM offload per
invocation; a serving system pays it **once**.  :class:`GraphCatalog`
builds each named graph exactly once — Kronecker edges, CSR, the
NUMA-partitioned forward/backward pair, and (for semi-external scenarios)
the array/value files on the simulated NVM device — then pins it and
hands out shared read handles.  Every query against the same name hits
the same :class:`~repro.semiext.storage.NVMStore`, the same simulated
clock and the same observability session, which is what lets concurrent
queries share forward-graph chunk fetches at all.

A pinned graph cannot be dropped while handles are open; the catalog
refuses rather than yanking files out from under an in-flight traversal.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bfs.bottomup import InMemoryScanner
from repro.bfs.policies import AlphaBetaPolicy
from repro.core.config import ScenarioConfig, ScenarioKind
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.csr.io import ExternalCSR, offload_csr
from repro.errors import ConfigurationError
from repro.graph500 import EdgeList, generate_edges
from repro.obs.session import NULL, Observability
from repro.semiext.clock import SimulatedClock
from repro.semiext.storage import NVMStore

__all__ = ["PinnedGraph", "GraphHandle", "GraphCatalog"]


class PinnedGraph:
    """One built, resident graph plus everything a traversal needs.

    Holds the CSR pair, the (optional) NVM store with the offloaded
    forward shards, the shared simulated clock, per-node bottom-up
    scanners and the degree vector — i.e. the state
    :class:`~repro.serve.engine.BatchedBFS` reads.  Construction happens
    in :meth:`GraphCatalog.build`; treat instances as immutable — except
    through :class:`~repro.graphmut.versioned.GraphMutator`, which swaps
    the derived structures wholesale and bumps :attr:`version` so every
    reader sees whole-version transitions only.
    """

    def __init__(
        self,
        name: str,
        scenario: ScenarioConfig,
        scale: int,
        edges: EdgeList,
        forward: ForwardGraph,
        backward: BackwardGraph,
        store: NVMStore | None,
        external_shards: list[ExternalCSR] | None,
        alpha: float,
        beta: float,
        obs: Observability,
        clock: SimulatedClock | None = None,
    ) -> None:
        self.name = name
        self.scenario = scenario
        self.scale = scale
        self.edges = edges
        self.forward = forward
        self.backward = backward
        self.store = store
        self.external_shards = external_shards
        self.alpha = alpha
        self.beta = beta
        self.obs = obs
        self.topology = forward.topology
        self.n_vertices = forward.n_vertices
        self.cost_model = scenario.cost_model
        if store is not None:
            self.clock = store.clock
        elif clock is not None:
            self.clock = clock
        else:
            self.clock = SimulatedClock()
        self.obs.bind_clock(self.clock)
        self.degrees = backward.global_degrees()
        self.scanners = [InMemoryScanner(s) for s in backward.shards]
        if store is not None and self.cost_model is not None:
            per_edge_s = self.cost_model.level_time_s(1, 0, 0)
            store.cache_hit_time_per_byte = per_edge_s / 8.0
        self.pins = 0
        # Bumped by GraphMutator per applied mutation batch; 0 = as built.
        self.version = 0

    @property
    def semi_external(self) -> bool:
        """Whether top-down reads go through the NVM device."""
        return self.external_shards is not None

    def top_down_shards(self) -> list:
        """Adjacency sources for the top-down direction."""
        if self.external_shards is not None:
            return list(self.external_shards)
        return list(self.forward.shards)

    def make_policy(self) -> AlphaBetaPolicy:
        """A fresh per-query direction policy with this graph's α/β."""
        return AlphaBetaPolicy(alpha=self.alpha, beta=self.beta)

    def think_time_s(self) -> float:
        """Per-NVM-request CPU overlap for the device queueing model."""
        if self.store is None or self.cost_model is None:
            return 0.0
        edges_per_request = self.store.chunk_bytes / 8.0
        return self.cost_model.per_request_think_time_s(edges_per_request)

    def device_health(self) -> float:
        """Health score of the backing device (1.0 when there is none)."""
        if self.store is None:
            return 1.0
        return self.store.health.health_score()

    @property
    def circuit_open(self) -> bool:
        """Whether the backing device's circuit breaker is open."""
        return self.store is not None and self.store.health.circuit_open

    def __repr__(self) -> str:
        return (
            f"PinnedGraph({self.name!r}, scale={self.scale}, "
            f"scenario={self.scenario.name!r}, pins={self.pins})"
        )


class GraphHandle:
    """A pinned read handle on a catalog graph (context manager).

    While any handle is open the catalog refuses to drop the graph;
    closing is idempotent.
    """

    def __init__(self, graph: PinnedGraph) -> None:
        self.graph = graph
        self._open = True
        graph.pins += 1

    def close(self) -> None:
        """Release the pin (idempotent)."""
        if self._open:
            self._open = False
            self.graph.pins -= 1

    def __enter__(self) -> PinnedGraph:
        return self.graph

    def __exit__(self, *exc) -> None:
        self.close()


class GraphCatalog:
    """Named, pinned graphs shared by every query against them.

    Parameters
    ----------
    workdir:
        Directory for the per-graph NVM stores; a temporary directory is
        created (and reused for the catalog's lifetime) when omitted.
    obs:
        Observability session shared by every graph built here — the
        ``serve.*``, ``bfs.*`` and ``nvm.*`` series of one serving
        process belong in one registry.
    """

    def __init__(
        self,
        workdir: str | Path | None = None,
        obs: Observability | None = None,
    ) -> None:
        if workdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            workdir = self._tmpdir.name
        else:
            self._tmpdir = None
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.obs = obs if obs is not None else NULL
        # One clock for the whole catalog: arrival timelines, device
        # charges and cache TTLs of every graph advance the same axis.
        self.clock = SimulatedClock()
        self.obs.bind_clock(self.clock)
        self._graphs: dict[str, PinnedGraph] = {}

    def names(self) -> list[str]:
        """Catalogued graph names, sorted."""
        return sorted(self._graphs)

    def build(
        self,
        name: str,
        scenario: ScenarioConfig,
        scale: int,
        edge_factor: int = 16,
        seed: int | None = None,
        alpha: float | None = None,
        beta: float | None = None,
        page_cache_bytes: int = 0,
    ) -> PinnedGraph:
        """Build and pin a graph under ``name`` (exactly once per name).

        ``alpha``/``beta`` override the scenario's direction thresholds
        for queries against this graph; ``page_cache_bytes`` sizes the
        store's OS page cache (0 by default so serving measurements
        isolate the *batching* amortization from cache warmth).
        """
        if name in self._graphs:
            raise ConfigurationError(
                f"graph {name!r} already built; catalog graphs build once"
            )
        n = 1 << scale
        edges = EdgeList(generate_edges(scale, edge_factor=edge_factor,
                                        seed=seed), n)
        csr = build_csr(edges)
        forward = ForwardGraph(csr, scenario.topology)
        backward = BackwardGraph(csr, scenario.topology)
        store = None
        external = None
        if scenario.kind is ScenarioKind.SEMI_EXTERNAL:
            store = NVMStore(
                self.workdir / name,
                scenario.device,
                clock=self.clock,
                concurrency=scenario.topology.n_cores,
                page_cache_bytes=page_cache_bytes,
                io_mode=scenario.io_mode,
                fault_plan=scenario.fault_plan,
                retry=scenario.retry,
                obs=self.obs,
            )
            external = [
                offload_csr(shard, store, f"forward.node{k}")
                for k, shard in enumerate(forward.shards)
            ]
        graph = PinnedGraph(
            name=name,
            scenario=scenario,
            scale=scale,
            edges=edges,
            forward=forward,
            backward=backward,
            store=store,
            external_shards=external,
            alpha=scenario.alpha if alpha is None else alpha,
            beta=scenario.beta if beta is None else beta,
            obs=self.obs,
            clock=self.clock,
        )
        self._graphs[name] = graph
        return graph

    def build_partitioned(
        self,
        name: str,
        scenario: ScenarioConfig,
        scale: int,
        n_partitions: int,
        edge_factor: int = 16,
        seed: int | None = None,
        alpha: float | None = None,
        beta: float | None = None,
        strategy: str = "contiguous",
        backend: str = "local",
        replicate_after: int | None = None,
        page_cache_bytes: int = 0,
        fault_plans=None,
    ) -> "PartitionedGraph":
        """Build and register a partitioned deployment under ``name``.

        The graph is sharded across ``n_partitions`` workers, each with
        its own NVM store under this catalog's workdir; queries route
        through the lockstep coordinator (see :mod:`repro.dist`), and
        ``replicate_after`` completed queries mark the graph hot and
        replicate it to every worker.  Requires a semi-external scenario
        — a partitioned deployment is precisely a fleet of per-partition
        NVM stores.
        """
        from repro.dist import DistributedBFS
        from repro.dist.serve import PartitionedGraph, make_partitioner

        if name in self._graphs:
            raise ConfigurationError(
                f"graph {name!r} already built; catalog graphs build once"
            )
        if scenario.kind is not ScenarioKind.SEMI_EXTERNAL:
            raise ConfigurationError(
                f"partitioned deployments need a semi-external scenario, "
                f"got {scenario.name!r} ({scenario.kind.name})"
            )
        n = 1 << scale
        edges = EdgeList(generate_edges(scale, edge_factor=edge_factor,
                                        seed=seed), n)
        csr = build_csr(edges)
        use_alpha = scenario.alpha if alpha is None else alpha
        use_beta = scenario.beta if beta is None else beta
        partitioner = make_partitioner(strategy, n_partitions, csr.degrees())
        workdir = self.workdir / name
        coordinator = DistributedBFS.build(
            csr,
            partitioner,
            AlphaBetaPolicy(alpha=use_alpha, beta=use_beta),
            workdir,
            scenario.device,
            cost_model=scenario.cost_model,
            clock=self.clock,
            obs=self.obs,
            fault_plans=(fault_plans if fault_plans is not None
                         else scenario.fault_plan),
            backend=backend,
            concurrency=scenario.topology.n_cores,
            page_cache_bytes=page_cache_bytes,
            retry=scenario.retry,
        )
        graph = PartitionedGraph(
            name=name,
            scenario=scenario,
            scale=scale,
            csr=csr,
            coordinator=coordinator,
            workdir=workdir,
            alpha=use_alpha,
            beta=use_beta,
            obs=self.obs,
            replicate_after=replicate_after,
        )
        self._graphs[name] = graph
        return graph

    def get(self, name: str) -> PinnedGraph:
        """Look up a built graph."""
        try:
            return self._graphs[name]
        except KeyError:
            raise ConfigurationError(
                f"no graph named {name!r} in catalog "
                f"(have {self.names()})"
            ) from None

    def open(self, name: str) -> GraphHandle:
        """Pin a graph and return a read handle (context manager)."""
        return GraphHandle(self.get(name))

    def drop(self, name: str) -> None:
        """Remove a graph; refuses while read handles are open."""
        graph = self.get(name)
        if graph.pins > 0:
            raise ConfigurationError(
                f"graph {name!r} still has {graph.pins} open handle(s)"
            )
        del self._graphs[name]

    def close(self) -> None:
        """Stop partitioned deployments and drop an owned workdir."""
        for graph in self._graphs.values():
            closer = getattr(graph, "close", None)
            if closer is not None:
                closer()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __repr__(self) -> str:
        return f"GraphCatalog({self.names()})"
