"""Legacy shim: enables `pip install -e . --no-use-pep517` in offline
environments lacking the `wheel` package. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
