#!/usr/bin/env python
"""Green Graph500 submission walk-through (paper §VIII, abstract).

Runs the semi-external configuration, converts its score to MTEPS/W with
the component power model of the paper's Huawei submission machine, and
prints a Green-Graph500-style entry next to the paper's (4.35 MTEPS/W,
November 2013, Big Data category, rank 4).

Usage::

    python examples/green_graph500.py [SCALE]
"""

import sys

from repro import DRAM_PCIE_FLASH, MachinePowerModel, run_graph500
from repro.analysis.report import ascii_table


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    print(f"Benchmarking the submission configuration at SCALE {scale}...")
    result = run_graph500(DRAM_PCIE_FLASH, scale=scale, n_roots=8, seed=2013)
    assert result.output.all_valid
    teps = result.median_teps

    machine = MachinePowerModel.green_graph500_submission()
    rows = [
        ["machine", "4-way Huawei, 500 GB DRAM, 4 TB NVM (modeled)"],
        ["machine power", f"{machine.total_watts:.0f} W"],
        ["median TEPS (this run)", f"{teps / 1e9:.2f} GTEPS"],
        ["MTEPS/W (this run)", f"{machine.mteps_per_watt(teps):.2f}"],
        ["MTEPS/W @ paper's 4.22 GTEPS",
         f"{machine.mteps_per_watt(4.22e9):.2f}"],
        ["paper's submission", "4.35 MTEPS/W — rank 4, Big Data, Nov 2013"],
    ]
    print(ascii_table(["field", "value"], rows, title="\nGreen Graph500 entry"))
    print(
        "\nThe energy argument: a single fat node with NVM replaces the "
        "DRAM (and the racks) a cluster would burn for the same graph."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
