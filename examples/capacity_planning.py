#!/usr/bin/env python
"""Capacity planning: what DRAM does a graph of a given SCALE need?

Reproduces the paper's capacity argument (Figures 3–4, Table II) as a
planning tool: for each SCALE, the exact NETAL-layout sizes, the minimum
DRAM for a DRAM-only run, and the minimum DRAM once the edge list and
forward graph are offloaded to NVM — including the SCALE at which a
128 GB machine stops working without offloading, and a demonstration that
the planner *refuses* infeasible placements instead of thrashing.

Usage::

    python examples/capacity_planning.py
"""

import sys

from repro import CapacityError, DRAM_ONLY, ScenarioConfig, ScenarioKind
from repro.analysis.report import ascii_table
from repro.core.offload import OffloadPlanner, StructureSizes
from repro.perfmodel import GraphSizeModel
from repro.util.units import GIB, format_bytes


def sizes_at(model: GraphSizeModel, scale: int) -> StructureSizes:
    b = model.breakdown(scale)
    return StructureSizes(
        edge_list=b.edge_list,
        forward=b.forward,
        backward=b.backward,
        status=b.status,
    )


def main() -> int:
    model = GraphSizeModel()
    dram_only = OffloadPlanner(DRAM_ONLY)
    semi = OffloadPlanner(
        ScenarioConfig(
            "planning", ScenarioKind.SEMI_EXTERNAL,
            device=__import__("repro").PCIE_FLASH,
        )
    )

    rows = []
    for scale in range(24, 33):
        s = sizes_at(model, scale)
        rows.append(
            [
                scale,
                format_bytes(s.working_set),
                format_bytes(dram_only.min_dram_bytes(s)),
                format_bytes(semi.min_dram_bytes(s)),
                f"{1 - semi.min_dram_bytes(s) / dram_only.min_dram_bytes(s):.0%}",
            ]
        )
    print(
        ascii_table(
            ["SCALE", "working set", "DRAM-only needs", "semi-external needs",
             "DRAM saved"],
            rows,
            title="DRAM requirements by SCALE (NETAL layout, edge factor 16)",
        )
    )

    # The paper's machine: where does 128 GB stop sufficing?
    print("\nOn the paper's 128 GB machine (Table I):")
    for scale in (26, 27, 28, 29):
        s = sizes_at(model, scale)
        fits_dram = dram_only.min_dram_bytes(s) <= 128 * GIB
        fits_semi = semi.min_dram_bytes(s) <= 128 * GIB
        print(
            f"  SCALE {scale}: DRAM-only "
            f"{'OK' if fits_dram else 'DOES NOT FIT'}, "
            f"semi-external {'OK' if fits_semi else 'DOES NOT FIT'}"
        )

    # The planner proves infeasibility instead of letting a run thrash.
    print("\nPlanner verdict for SCALE 29 with a 128 GB DRAM-only budget:")
    tight = ScenarioConfig(
        "128GB DRAM-only", ScenarioKind.DRAM_ONLY,
        dram_capacity_bytes=128 * GIB,
    )
    try:
        OffloadPlanner(tight).plan(sizes_at(model, 29))
        print("  unexpectedly feasible!?")
    except CapacityError as exc:
        print(f"  CapacityError: {exc}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
