#!/usr/bin/env python
"""Social-network reachability analysis on a semi-external graph.

The paper's introduction motivates the system with social networks ("a
friend network ... over 900 million vertices and over 100 billion edges")
that exceed a node's DRAM.  This example plays that scenario at laptop
scale: a scale-free Kronecker graph stands in for the friend network, the
forward graph lives on the simulated PCIe flash, and the library answers
the classic analyst questions — how far is everyone from a seed user, how
big is the reachable community, where do the hops stop mattering — with
BFS trees it validates before trusting.

Usage::

    python examples/social_network_analysis.py [SCALE]
"""

import sys
import tempfile

import numpy as np

from repro import (
    AlphaBetaPolicy,
    EdgeList,
    NVMStore,
    NumaTopology,
    PCIE_FLASH,
    SemiExternalBFS,
    build_csr,
    generate_edges,
    validate_bfs_tree,
)
from repro.analysis.report import ascii_table
from repro.csr import BackwardGraph, ForwardGraph
from repro.perfmodel import DramCostModel


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    n = 1 << scale
    print(f"Building a {n:,}-member friend network (Kronecker SCALE {scale})")
    edges = EdgeList(generate_edges(scale, seed=7), n)
    graph = build_csr(edges)
    degrees = graph.degrees()

    # Network shape: the scale-free skew the paper's offloading exploits.
    active = degrees > 0
    print(
        f"  members with friends: {int(active.sum()):,} "
        f"({active.mean():.0%}), max friend count {int(degrees.max()):,}, "
        f"median {int(np.median(degrees[active]))}"
    )

    topo = NumaTopology(4, 12)
    forward, backward = ForwardGraph(graph, topo), BackwardGraph(graph, topo)

    with tempfile.TemporaryDirectory(prefix="friendnet-") as workdir:
        store = NVMStore(workdir, PCIE_FLASH, concurrency=topo.n_cores)
        engine = SemiExternalBFS.offload(
            forward,
            backward,
            AlphaBetaPolicy(alpha=n / 128, beta=n / 128),
            store,
            cost_model=DramCostModel(),
        )
        print(
            f"  forward graph offloaded to {store.device.name}: "
            f"{store.nbytes / 1e6:.1f} MB on device\n"
        )

        # Seed at the most-connected member (a celebrity account).
        seed_user = int(np.argmax(degrees))
        result = engine.run(seed_user)
        check = validate_bfs_tree(edges, result.parent, seed_user)
        check.raise_if_invalid()
        levels = check.levels

        reached = result.n_visited
        print(
            f"Seed user {seed_user} (degree {int(degrees[seed_user]):,}) "
            f"reaches {reached:,} members "
            f"({reached / n:.0%} of the network) in "
            f"{result.n_levels} hops"
        )

        # Hop histogram: the small-world collapse the hybrid BFS exploits.
        rows = []
        cumulative = 0
        for hop in range(int(levels.max()) + 1):
            count = int((levels == hop).sum())
            cumulative += count
            rows.append(
                [hop, f"{count:,}", f"{cumulative / reached:.1%}"]
            )
        print(
            ascii_table(
                ["hops", "members", "cumulative"],
                rows,
                title="\nDegrees of separation from the seed",
            )
        )

        # Where the engine spent its effort (the hybrid story).
        print("\nPer-level search schedule:")
        for t in result.traces:
            print(
                f"  hop {t.level}: {t.direction.value:9s} "
                f"frontier {t.frontier_size:>7,}  "
                f"edges scanned {t.edges_scanned:>9,}  "
                f"NVM requests {t.nvm_requests:>6,}"
            )
        st = store.iostats
        print(
            f"\nNVM during analysis: {st.n_requests:,} requests, "
            f"avgrq-sz {st.avgrq_sz:.1f} sectors, "
            f"avgqu-sz {st.avgqu_sz():.1f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
