#!/usr/bin/env python
"""Streaming Step 1 + Step 2: build a graph that never fits in memory.

At the paper's SCALE 31 the edge list alone is 384 GB, so the pipeline's
first two steps must *stream*: generate edge batches straight onto NVM in
NETAL's packed 12-byte format, then construct the CSR with two passes
over the NVM file — peak DRAM stays O(n + batch) regardless of the edge
count (§V-A: "we construct the forward graph on DRAM by directly reading
the edge list from NVM").

This example runs the streaming path and cross-checks it against the
monolithic builder, printing the memory highway each byte travelled.

Usage::

    python examples/streaming_construction.py [SCALE]
"""

import sys
import tempfile

import numpy as np

from repro import EdgeList, NVMStore, PCIE_FLASH, build_csr, generate_edges
from repro.csr import build_csr_streaming
from repro.graph500 import generate_edge_batches
from repro.graph500.io import PACKED_EDGE_BYTES, pack_edges_48, unpack_edges_48
from repro.util.units import format_bytes


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    n = 1 << scale
    batch_edges = 1 << 12
    seed = 7

    with tempfile.TemporaryDirectory(prefix="streaming-") as workdir:
        store = NVMStore(workdir, PCIE_FLASH)

        # Step 1 — stream Kronecker batches onto NVM, packed at 12 B/edge.
        packed_parts = []
        n_batches = 0
        for batch in generate_edge_batches(
            scale, seed=seed, batch_edges=batch_edges
        ):
            packed_parts.append(
                pack_edges_48(EdgeList(batch, n))
            )
            n_batches += 1
        packed = np.concatenate(packed_parts)
        edge_file = store.put_array("edge_list", packed)
        m = packed.size // PACKED_EDGE_BYTES
        print(
            f"Step 1: streamed {m:,} edges to NVM in {n_batches} batches "
            f"({format_bytes(edge_file.nbytes)} at {PACKED_EDGE_BYTES} B/edge; "
            f"int64 pairs would be {format_bytes(m * 16)})"
        )

        # Step 2 — two-pass CSR construction reading batches back from NVM.
        def nvm_batches():
            for lo in range(0, edge_file.size,
                            batch_edges * PACKED_EDGE_BYTES):
                hi = min(lo + batch_edges * PACKED_EDGE_BYTES,
                         edge_file.size)
                raw = edge_file.read_slice(lo, hi)
                yield unpack_edges_48(raw, n).endpoints

        graph = build_csr_streaming(nvm_batches, n)
        print(
            f"Step 2: two-pass construction read the edge list twice from "
            f"NVM ({store.iostats.n_requests:,} device requests, "
            f"{format_bytes(store.iostats.total_bytes)}); "
            f"CSR holds {graph.n_directed_edges:,} directed edges "
            f"({format_bytes(graph.nbytes)})"
        )

        # Cross-check against the monolithic path on the same batches.
        all_edges = np.concatenate(
            list(generate_edge_batches(scale, seed=seed,
                                       batch_edges=batch_edges)),
            axis=1,
        )
        reference = build_csr(all_edges, n_vertices=n)
        assert graph == reference, "streaming CSR != monolithic CSR"
        print("Check:  streaming result is identical to the monolithic "
              "builder's")
    return 0


if __name__ == "__main__":
    sys.exit(main())
