#!/usr/bin/env python
"""Device study: what would this exact BFS I/O cost on other hardware?

The paper closes with "performance studies on various NVM devices" as
future work (§VIII) and §VI-D speculates that higher-IOPS devices "can
instantly evacuate I/O requests in a I/O queue".  This example does both,
trace-driven like the paper's own iostat methodology:

1. run the semi-external BFS once on the ioDrive2 model, *recording* the
   request trace;
2. replay the identical trace against the whole device catalog — from a
   spinning disk to storage-class memory — plus a libaio-style aggregated
   submission mode, without re-running BFS.

Usage::

    python examples/device_study.py [SCALE]
"""

import sys
import tempfile

from repro import (
    AlphaBetaPolicy,
    EdgeList,
    NumaTopology,
    NVMStore,
    PCIE_FLASH,
    SemiExternalBFS,
    build_csr,
    generate_edges,
)
from repro.analysis.report import ascii_table
from repro.csr import BackwardGraph, ForwardGraph
from repro.perfmodel import DramCostModel
from repro.semiext import attach_recorder
from repro.semiext.device import DEVICE_CATALOG


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    n = 1 << scale
    edges = EdgeList(generate_edges(scale, seed=99), n)
    graph = build_csr(edges)
    topo = NumaTopology(4, 12)
    forward, backward = ForwardGraph(graph, topo), BackwardGraph(graph, topo)

    with tempfile.TemporaryDirectory(prefix="device-study-") as workdir:
        # Step 1 — one recorded run on the paper's PCIe flash.
        store = NVMStore(
            f"{workdir}/record", PCIE_FLASH, concurrency=topo.n_cores
        )
        trace = attach_recorder(store)
        engine = SemiExternalBFS.offload(
            forward, backward,
            AlphaBetaPolicy(alpha=30.0 * n / (1 << 15),
                            beta=30.0 * n / (1 << 15)),
            store,
            cost_model=DramCostModel(),
        )
        result = engine.run(int(graph.degrees().argmax()))
        from repro.util.units import format_bytes

        print(
            f"Recorded one BFS at SCALE {scale}: {trace.n_batches} request "
            f"batches, {format_bytes(trace.total_bytes)} requested, "
            f"{result.n_levels} levels\n"
        )

        # Step 2 — replay the identical access pattern everywhere.
        rows = []
        for device in DEVICE_CATALOG:
            stats = trace.replay(
                device, f"{workdir}/replay-{device.name[:8]}",
                concurrency=topo.n_cores,
            )
            rows.append(
                [
                    device.name,
                    f"{stats.busy_time_s * 1e3:9.2f} ms",
                    f"{stats.avgqu_sz():5.1f}",
                    f"{stats.reads_per_s() / 1e3:8.1f}k",
                ]
            )
        async_stats = trace.replay(
            PCIE_FLASH, f"{workdir}/replay-async", io_mode="async",
            concurrency=topo.n_cores,
        )
        rows.append(
            [
                f"{PCIE_FLASH.name} + libaio aggregation",
                f"{async_stats.busy_time_s * 1e3:9.2f} ms",
                f"{async_stats.avgqu_sz():5.1f}",
                f"{async_stats.reads_per_s() / 1e3:8.1f}k",
            ]
        )
        print(
            ascii_table(
                ["device", "I/O service time", "avgqu-sz", "r/s"],
                rows,
                title="The same request trace on nine years of hardware",
            )
        )
    print(
        "\nReading: the BFS access pattern is fixed; service time spans "
        "~four orders of magnitude across devices, and request\n"
        "aggregation (the paper's libaio suggestion) buys another slice "
        "on IOPS-bound hardware."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
