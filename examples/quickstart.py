#!/usr/bin/env python
"""Quickstart: run the paper's three scenarios end to end.

Generates a Graph500 Kronecker graph, runs the full pipeline (generation,
offloading, construction, 8 x BFS + validation) for DRAM-only,
DRAM+PCIeFlash and DRAM+SSD, and prints the scenario comparison the
paper's abstract summarizes.

Usage::

    python examples/quickstart.py [SCALE]
"""

import sys

from repro import DRAM_ONLY, DRAM_PCIE_FLASH, DRAM_SSD, run_graph500
from repro.analysis.report import ascii_table, format_teps


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    seed = 42
    print(f"Kronecker SCALE {scale} (2^{scale} vertices, edge factor 16)\n")

    rows = []
    baseline = None
    for scenario in (DRAM_ONLY, DRAM_PCIE_FLASH, DRAM_SSD):
        result = run_graph500(
            scenario, scale=scale, n_roots=8, seed=seed
        )
        assert result.output.all_valid, "Graph500 validation failed"
        teps = result.median_teps
        if baseline is None:
            baseline = teps
        nvm_note = ""
        if result.bfs_iostats is not None:
            st = result.bfs_iostats
            nvm_note = (
                f"{st.n_requests:,} reqs, avgrq-sz {st.avgrq_sz:.1f} sectors"
            )
        rows.append(
            [
                scenario.name,
                format_teps(teps),
                f"-{1 - teps / baseline:.1%}" if teps != baseline else "—",
                f"{result.plan.dram_saved_fraction:.0%}",
                nvm_note or "—",
            ]
        )

    print(
        ascii_table(
            ["scenario", "median TEPS", "degradation", "bytes off DRAM",
             "BFS-phase NVM I/O"],
            rows,
            title="Hybrid BFS with semi-external memory (validated runs)",
        )
    )
    print(
        "\nPaper (SCALE 27): DRAM-only 5.12 GTEPS; "
        "DRAM+PCIeFlash 4.22 GTEPS (-19.18%); DRAM+SSD 2.76 GTEPS (-47.1%)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
