#!/usr/bin/env python
"""Further graph offloading: putting part of the *backward* graph on NVM.

The paper's §VI-E only *estimates* how much of the backward graph could
follow the forward graph onto NVM; this example actually runs it, twice
over:

* the first-class tiered store (`repro.semiext.tiered`): first k edges
  per vertex in a DRAM truncated CSR, tails on NVM, per-vertex DRAM→NVM
  fallthrough charged to the simulated clock — the *measured*
  memory-vs-TEPS frontier (see docs/offload.md);
* the paper's two readings of the budget k (prefix vs degree-threshold),
  which explain Figure 14's mutually inconsistent access and size
  series.

Usage::

    python examples/backward_offload.py [SCALE]
"""

import sys
import tempfile
from pathlib import Path

from repro import NumaTopology, PCIE_FLASH, build_csr, generate_edges, EdgeList
from repro.analysis.offload_ratio import backward_offload_sweep, tiered_offload_sweep
from repro.analysis.report import ascii_table, format_teps
from repro.bfs.metrics import Direction
from repro.bfs.policies import FixedPolicy
from repro.csr import BackwardGraph, ForwardGraph
from repro.graph500 import sample_roots


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    n = 1 << scale
    edges = EdgeList(generate_edges(scale, seed=11), n)
    graph = build_csr(edges)
    topo = NumaTopology(4, 12)
    forward, backward = ForwardGraph(graph, topo), BackwardGraph(graph, topo)
    roots = sample_roots(graph.degrees(), n_roots=4, seed=11)

    print(
        f"Backward graph: {backward.nbytes / 1e6:.1f} MB in DRAM at "
        f"SCALE {scale}; sweeping per-vertex DRAM budgets k...\n"
    )
    with tempfile.TemporaryDirectory(prefix="bwd-offload-") as workdir:
        measured = tiered_offload_sweep(
            forward,
            backward,
            PCIE_FLASH,
            Path(workdir) / "tiered",
            roots,
            ks=(2, 4, 8, 16, 32, 64),
            # Pinned bottom-up: every level scans through the tier.
            policy=FixedPolicy(Direction.BOTTOM_UP),
        )
        points = backward_offload_sweep(
            forward,
            backward,
            PCIE_FLASH,
            Path(workdir) / "estimate",
            roots,
            ks=(2, 4, 8, 16, 32, 64),
            alpha=n / 128,
            beta=n / 128,
        )

    print(
        ascii_table(
            ["k", "DRAM resident", "saved", "fallthroughs", "rate",
             "modeled TEPS"],
            [
                [p.k, f"{p.dram_bytes / 1e6:.2f} MB",
                 f"{p.dram_reduction:.1%}", p.fallthrough_rows,
                 f"{p.fallthrough_rate:.1%}", format_teps(p.teps)]
                for p in measured
            ],
            title="Measured memory-vs-TEPS frontier "
                  "(TieredBackwardStore, schedule pinned bottom-up)",
        )
    )
    print()

    for strategy, title in (
        ("prefix", "Keep the first k edges of every vertex in DRAM "
                   "(paper's access series: 38.2% -> 0.7%)"),
        ("degree-threshold", "Offload whole vertices of degree <= k "
                             "(paper's size series: 2.6% -> 15.1%)"),
    ):
        rows = [
            [p.k, f"{p.dram_reduction:.1%}", f"{p.nvm_access_ratio:.1%}"]
            for p in points
            if p.strategy == strategy
        ]
        print(
            ascii_table(
                ["k", "DRAM bytes saved", "bottom-up probes on NVM"],
                rows,
                title=title,
            )
        )
        print()
    print(
        "Reading the trade-off: a small k frees little DRAM but sends a "
        "large share of probes to the device; by k=32 the early-\n"
        "terminating scan almost never leaves DRAM — the paper's "
        "conclusion that infrequently accessed backward-graph data can\n"
        "be offloaded safely."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
