"""Microbenchmark — Graph500 Step-4 validation throughput.

The benchmark validates after *every* of the 64 iterations (§II), so
validation cost is part of any real Graph500 campaign even though it is
excluded from TEPS.  This bench times the full five-rule validator on a
bench-scale tree and reports edges validated per second, plus the shape
statistics pass used by the self-similarity analysis.
"""

import numpy as np

from repro.analysis.graphstats import graph_shape
from repro.bfs import AlphaBetaPolicy, HybridBFS
from repro.graph500 import validate_bfs_tree


def test_validation_throughput(benchmark, figure_report, workload):
    engine = HybridBFS(
        workload.forward, workload.backward, AlphaBetaPolicy(50, 500)
    )
    root = workload.a_root(1)
    result = engine.run(root)

    out = benchmark(validate_bfs_tree, workload.edges, result.parent, root)
    assert out.ok

    rate = workload.edges.n_edges / benchmark.stats["mean"]
    figure_report.add(
        "Validation microbenchmark (Graph500 Step 4)",
        f"five-rule validation of a SCALE-{workload.scale} tree: "
        f"{rate / 1e6:.1f} M input edges/s "
        f"({benchmark.stats['mean'] * 1e3:.1f} ms per iteration)",
    )


def test_graph_shape_pass(benchmark, workload):
    shape = benchmark(graph_shape, workload.csr)
    assert shape.giant_component_fraction > 0.9
    benchmark.extra_info["shape"] = shape.format()
