"""Figure 14 — the backward-graph offload trade-off, *measured* (§VI-E).

The paper only estimates this figure from access traces.  Here the tiered
backward store (:class:`repro.semiext.tiered.TieredBackwardStore`) actually
runs it: the first k edges of every vertex live in a DRAM-resident
truncated CSR, each row's tail lives on the modeled device, and the
bottom-up scan falls through DRAM→NVM per vertex with every tail fetch
charged to the simulated clock.  The bench sweeps k with the schedule
pinned bottom-up and asserts the frontier's shape:

* DRAM-resident bytes strictly grow with k (strictly *fall* as k shrinks);
* per-vertex fallthrough reads strictly fall as k grows;
* modeled TEPS at the largest k beats the smallest k (the memory-vs-TEPS
  trade the paper's Fig. 14 gestures at).

The paper's two (mutually inconsistent) number series come from two
readings of the budget (see DESIGN.md); the *degree-threshold* reading is
still reported through :func:`repro.analysis.backward_offload_sweep`, and
its size series keeps its monotonicity assertions:

* access series (prefix reading): 38.2 % of probes on NVM at k=2 falling
  to 0.7 % at k=32 — here measured off the tiered store's probe counters;
* size series (degree-threshold reading): DRAM shrinks 2.6 % at k=2 and
  15.1 % at k=32.

The same measured curve, frozen at seed 7 and SCALE 10, is committed as
``benchmarks/baselines/BENCH_backward_offload.json`` and enforced by the
CI perf gate.
"""

from repro.analysis.offload_ratio import backward_offload_sweep, tiered_offload_sweep
from repro.analysis.report import ascii_table, format_teps
from repro.bfs.metrics import Direction
from repro.bfs.policies import FixedPolicy
from repro.graph500 import sample_roots
from repro.semiext import PCIE_FLASH

from conftest import BENCH_SEED

KS = (2, 4, 8, 16, 32, 64)


def test_fig14_backward_offload(benchmark, figure_report, workload, tmp_path):
    roots = sample_roots(
        workload.csr.degrees(), n_roots=3, seed=BENCH_SEED
    )
    alpha = workload.n / 128  # mostly bottom-up, as the offload targets

    def sweep():
        measured = tiered_offload_sweep(
            workload.forward,
            workload.backward,
            PCIE_FLASH,
            tmp_path / "tiered",
            roots,
            ks=KS,
            # Pinned bottom-up: every level scans through the tier, so
            # the fallthrough curve is the store's, not the schedule's.
            policy=FixedPolicy(Direction.BOTTOM_UP),
        )
        estimate = backward_offload_sweep(
            workload.forward,
            workload.backward,
            PCIE_FLASH,
            tmp_path / "estimate",
            roots,
            ks=KS,
            alpha=alpha,
            beta=alpha,
            strategies=("degree-threshold",),
        )
        return measured, estimate

    measured, estimate = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            p.k,
            p.dram_bytes,
            f"{p.dram_reduction:.1%}",
            p.fallthrough_rows,
            f"{p.fallthrough_rate:.1%}",
            format_teps(p.teps),
        ]
        for p in measured
    ]
    figure_report.add(
        f"Figure 14 (measured): tiered backward store @ SCALE "
        f"{workload.scale} (paper estimate: k=2 -> 38.2% accesses; "
        "k=32 -> 0.7%)",
        ascii_table(
            ["k", "DRAM bytes", "saved", "fallthroughs", "rate",
             "modeled TEPS"],
            rows,
        ),
    )
    benchmark.extra_info["measured"] = [
        (p.k, p.dram_bytes, p.fallthrough_rows, p.teps) for p in measured
    ]

    # Memory axis: DRAM bytes strictly fall as k shrinks.
    dram = [p.dram_bytes for p in measured]
    assert all(a < b for a, b in zip(dram, dram[1:]))
    # Device axis: fallthrough reads strictly grow as k shrinks.
    falls = [p.fallthrough_rows for p in measured]
    assert all(a > b for a, b in zip(falls, falls[1:]))
    # Access series, now measured: the share of scanned rows that had to
    # touch the NVM tail collapses in k (paper's prefix reading: 38.2 %
    # of probes at k=2 -> 0.7 % at k=32).
    access = [p.fallthrough_rate for p in measured]
    assert all(a >= b for a, b in zip(access, access[1:]))
    assert access[0] > access[-1]
    assert access[-1] < 0.05
    # TEPS axis: buying DRAM back buys time back.
    assert measured[-1].teps > measured[0].teps

    # Size series (degree-threshold reading): DRAM savings grow with k.
    thresh = sorted(estimate, key=lambda p: p.k)
    saving = [p.dram_reduction for p in thresh]
    assert saving[0] < saving[-1]
    assert all(a <= b + 1e-9 for a, b in zip(saving, saving[1:]))
    # Low-degree rows hold a minority of the bytes (Kronecker skew).
    assert saving[-1] < 0.6
