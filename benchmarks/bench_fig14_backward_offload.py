"""Figure 14 — access ratio to the backward graph on NVM versus the
per-vertex DRAM edge budget k (paper §VI-E).

The paper's two number series correspond to two readings of "limit the
number of edges for a vertex to store on DRAM" (see DESIGN.md):

* access series (prefix reading): 38.2 % of probes on NVM at k=2,
  falling to 0.7 % at k=32 — reproduced by the *prefix* strategy, whose
  NVM share must fall monotonically in k;
* size series (degree-threshold reading): DRAM shrinks 2.6 % at k=2 and
  15.1 % at k=32 — reproduced by the *degree-threshold* strategy, whose
  DRAM savings grow monotonically in k.

Unlike the paper (an estimate from access traces), this bench actually
runs the partially offloaded bottom-up, with early termination crossing
the DRAM/NVM boundary.
"""

from repro.analysis.offload_ratio import backward_offload_sweep
from repro.analysis.report import ascii_table
from repro.graph500 import sample_roots
from repro.semiext import PCIE_FLASH

from conftest import BENCH_SEED

KS = (2, 4, 8, 16, 32, 64)


def test_fig14_backward_offload(benchmark, figure_report, workload, tmp_path):
    roots = sample_roots(
        workload.csr.degrees(), n_roots=3, seed=BENCH_SEED
    )
    alpha = workload.n / 128  # mostly bottom-up, as the offload targets

    def sweep():
        return backward_offload_sweep(
            workload.forward,
            workload.backward,
            PCIE_FLASH,
            tmp_path,
            roots,
            ks=KS,
            alpha=alpha,
            beta=alpha,
        )

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            p.strategy,
            p.k,
            f"{p.dram_reduction:.1%}",
            f"{p.nvm_access_ratio:.1%}",
        ]
        for p in points
    ]
    figure_report.add(
        f"Figure 14: backward-graph offload @ SCALE {workload.scale} "
        "(paper: k=2 -> 38.2% accesses / 2.6% size; "
        "k=32 -> 0.7% accesses / 15.1% size)",
        ascii_table(
            ["strategy", "k", "DRAM reduction", "NVM access ratio"], rows
        ),
    )
    benchmark.extra_info["points"] = [
        (p.strategy, p.k, p.dram_reduction, p.nvm_access_ratio)
        for p in points
    ]

    prefix = sorted(
        (p for p in points if p.strategy == "prefix"), key=lambda p: p.k
    )
    thresh = sorted(
        (p for p in points if p.strategy == "degree-threshold"),
        key=lambda p: p.k,
    )
    # Access series: NVM share collapses as k grows (38.2% -> 0.7%).
    access = [p.nvm_access_ratio for p in prefix]
    assert access[0] > access[-1]
    assert access[-1] < 0.05
    assert all(a >= b - 1e-9 for a, b in zip(access, access[1:]))
    # Size series: DRAM savings grow with k (2.6% -> 15.1%).
    saving = [p.dram_reduction for p in thresh]
    assert saving[0] < saving[-1]
    assert all(a <= b + 1e-9 for a, b in zip(saving, saving[1:]))
    # Low-degree rows hold a minority of the bytes (Kronecker skew).
    assert saving[-1] < 0.6
