"""Figure 9 — the same comparison one SCALE lower (paper: SCALE 26),
where the spare DRAM of the 64 GB machines holds the whole forward graph.

Paper observation: "the DRAM+PCIeFlash scenario exhibits competitive
performance to the DRAM-only scenario ... only a few top-down approaches
access the forward graph on NVM, and most of accesses are conducted to
the backward graph on DRAM".

The mechanism is the OS page cache: the reproduction sizes the store's
modeled page cache to the scenario's spare DRAM, and at the smaller SCALE
that spare exceeds the forward graph, so after warm-up the top-down levels
run at memory speed.  The bench asserts the *gap narrows* relative to
Figure 8's and that the page-cache hit ratio is near 1 at the small scale.
"""

import dataclasses

from repro.analysis.perfcompare import build_engine
from repro.analysis.report import ascii_table, format_teps
from repro.core import DRAM_ONLY, DRAM_PCIE_FLASH
from repro.graph500 import Graph500Driver

from conftest import BENCH_SEED, N_ROOTS


def _best_median(driver, scenario, wl, points, tmp_path, tag):
    """Best warm-pass median TEPS over the parameter points.

    Each engine runs the driver's roots twice and the second (warm) pass
    is scored: the paper's 64-iteration benchmark likewise measures a
    page cache that earlier iterations populated.
    """
    best_teps = 0.0
    last_store = None
    for alpha, beta in points:
        engine = build_engine(
            scenario, wl.forward, wl.backward, alpha, beta, tmp_path,
            prefix=f"{tag}-{alpha:g}",
        )
        driver.run(engine)  # cold pass fills the page cache
        teps = driver.run(engine).stats_modeled.median_teps
        if teps > best_teps:
            best_teps = teps
            last_store = getattr(engine, "store", None)
    return best_teps, last_store


def test_fig9_small_scale(
    benchmark, figure_report, workload, small_workload, tmp_path
):
    # The paper's budget is *absolute* (64 GB regardless of SCALE): pin
    # the same byte budget for both scales from the large working set,
    # scaled by the paper's 64/88.3 capacity ratio.
    n_l = workload.n
    status_l = n_l * 8 + 2 * (n_l // 8) + 2 * n_l * 8
    working_set_large = (
        workload.forward.nbytes + workload.backward.nbytes + status_l
    )
    budget = int(64.0 / 88.3 * working_set_large)
    pcie_abs = dataclasses.replace(
        DRAM_PCIE_FLASH, dram_capacity_bytes=budget
    )

    def run_both_scales():
        out = {}
        for tag, wl in (("large", workload), ("small", small_workload)):
            driver = Graph500Driver(
                wl.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
            )
            points = ((244.0 * wl.n / (1 << 15), 2440.0 * wl.n / (1 << 15)),)
            dram, _ = _best_median(
                driver, DRAM_ONLY, wl, points, tmp_path, f"{tag}-d"
            )
            pcie, store = _best_median(
                driver, pcie_abs, wl, points, tmp_path, f"{tag}-p"
            )
            out[tag] = (
                dram,
                pcie,
                store.cache_hit_ratio if store else 0.0,
                store.page_cache_bytes if store else 0,
                wl.forward.nbytes,
            )
        return out

    out = benchmark.pedantic(run_both_scales, rounds=1, iterations=1)

    rows = []
    gaps = {}
    for tag, (dram, pcie, hit, cache, fwd) in out.items():
        gaps[tag] = 1 - pcie / dram
        rows.append(
            [
                tag,
                format_teps(dram),
                format_teps(pcie),
                f"{gaps[tag]:.1%}",
                f"{hit:.2f}",
                f"{cache / fwd:.2f}x" if fwd else "-",
            ]
        )
    figure_report.add(
        f"Figure 9: SCALE {small_workload.scale} vs {workload.scale} "
        "(paper: at SCALE 26 PCIeFlash is competitive with DRAM-only)",
        ascii_table(
            ["scale", "DRAM-only", "DRAM+PCIeFlash", "gap",
             "cache hit", "cache/fwd"],
            rows,
        ),
    )
    benchmark.extra_info["gaps"] = gaps

    # The defining Figure 9 behaviour: at the scale whose forward graph
    # fits the (fixed-budget) page cache, warm PCIeFlash is competitive
    # with DRAM-only; at the larger scale a gap remains.
    assert out["small"][3] >= out["small"][4]  # cache holds fwd at small
    assert out["large"][3] < out["large"][4]  # ... but not at large
    assert gaps["small"] <= gaps["large"] + 1e-9
    assert gaps["small"] < 0.05  # "competitive performance"
