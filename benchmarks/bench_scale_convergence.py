"""Scale convergence — the degradation gap closes as the graph grows.

The one paper number this reproduction cannot match directly is the
SCALE-27 degradation percentage (19.18 % on PCIe flash), because the
small-frontier top-down levels' constant I/O cost is not amortized by a
microsecond-scale run.  This bench *measures the convergence*: the same
experiment across six SCALEs shows the PCIe degradation falling
monotonically (97 % at SCALE 11 to ~79 % at SCALE 16 under default
settings), with the scale-projection estimator extrapolating the
remainder of the way to the paper's operating point.
"""

import numpy as np

from repro.analysis.report import ascii_table
from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.graph500 import EdgeList, Graph500Driver, generate_edges
from repro.numa import NumaTopology
from repro.perfmodel import DramCostModel, projected_degradation
from repro.semiext import NVMStore, PCIE_FLASH

from conftest import BENCH_SCALE, BENCH_SEED

SCALES = tuple(range(max(10, BENCH_SCALE - 4), BENCH_SCALE + 1))


def test_scale_convergence(benchmark, figure_report, tmp_path):
    def measure():
        rows = []
        for scale in SCALES:
            n = 1 << scale
            edges = EdgeList(generate_edges(scale, seed=BENCH_SEED), n)
            csr = build_csr(edges)
            topo = NumaTopology(4, 12)
            fwd, bwd = ForwardGraph(csr, topo), BackwardGraph(csr, topo)
            driver = Graph500Driver(
                edges, n_roots=6, seed=BENCH_SEED, validate=False
            )
            alpha = 244.0 * n / (1 << 15)
            beta = 10 * alpha
            dram = driver.run(
                HybridBFS(
                    fwd, bwd, AlphaBetaPolicy(alpha, beta), DramCostModel()
                )
            ).stats_modeled.median_teps
            store = NVMStore(
                tmp_path / f"s{scale}", PCIE_FLASH,
                concurrency=topo.n_cores,
                page_cache_bytes=bwd.nbytes // 3,
            )
            semi_engine = SemiExternalBFS.offload(
                fwd, bwd, AlphaBetaPolicy(alpha, beta), store,
                cost_model=DramCostModel(),
            )
            semi = driver.run(semi_engine).stats_modeled.median_teps
            # Projection from a single paired run at this scale.
            root = int(driver.roots[0])
            d_run = HybridBFS(
                fwd, bwd, AlphaBetaPolicy(alpha, beta), DramCostModel()
            ).run(root)
            s_run = semi_engine.run(root)
            proj27 = projected_degradation(d_run, s_run, scale, 27)
            rows.append((scale, dram, semi, 1 - semi / dram, proj27))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = [
        [
            scale,
            f"{dram / 1e9:.2f} GTEPS",
            f"{semi / 1e9:.2f} GTEPS",
            f"{degr:.1%}",
            f"{proj:.1%}",
        ]
        for scale, dram, semi, degr, proj in rows
    ]
    figure_report.add(
        "Scale convergence (paper @ SCALE 27: 19.18% PCIe degradation)",
        ascii_table(
            ["SCALE", "DRAM-only", "DRAM+PCIeFlash", "measured degr",
             "projected @27"],
            table,
        ),
    )
    benchmark.extra_info["degradation_by_scale"] = {
        str(r[0]): r[3] for r in rows
    }

    degr = np.array([r[3] for r in rows])
    # Monotone-ish decrease: no SCALE-up worsens degradation beyond
    # noise, and the sweep ends strictly below where it started (the
    # drop steepens with SCALE: ~2 points across 10→14, ~6 across 11→15).
    assert np.all(np.diff(degr) < 0.02), degr
    assert degr[-1] < degr[0] - 0.005
    # The projection lands at or below the measured value everywhere.
    for _, _, _, measured, proj in rows:
        assert proj <= measured + 1e-9