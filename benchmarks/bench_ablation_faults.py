"""Ablation — TEPS degradation versus injected device-fault rate.

Sweeps the transient-error rate of a seeded fault plan (plus a fixed
flash-GC pause rate) for the PCIeFlash and SATA SSD devices and measures
modeled TEPS against the fault-free baseline.  Expected shape: TEPS
degrades monotonically-ish with the fault rate — every failed attempt
re-charges the device and adds backoff — but correctness never does: all
runs produce the baseline's parent trees (the resilient read path absorbs
every transient), which is the robustness counterpart of the paper's
"bias the schedule away from the slow medium" argument (§III-C).
"""

import numpy as np

from repro.analysis.report import ascii_table, format_teps
from repro.analysis.resilience import ResilienceSummary
from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD
from repro.semiext.faults import (
    DeviceHealthMonitor,
    FaultPlan,
    RetryPolicy,
)

from conftest import BENCH_SEED, N_ROOTS

FAULT_RATES = (0.0, 0.01, 0.05, 0.2)
GC_RATE = 0.05
GC_PAUSE_S = 2e-3


def test_ablation_fault_rate(benchmark, figure_report, workload, tmp_path):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 30.0 * workload.n / (1 << 15)

    def run_one(device, rate, key):
        plan = (
            FaultPlan.none()
            if rate == 0.0
            else FaultPlan(seed=BENCH_SEED, error_rate=rate,
                           gc_rate=GC_RATE, gc_pause_s=GC_PAUSE_S)
        )
        store = NVMStore(
            tmp_path / key,
            device,
            concurrency=workload.topology.n_cores,
            fault_plan=plan,
            # The sweep measures the *resilient path's* cost, so the
            # breaker must absorb rather than abandon: no rate tripping,
            # and a budget deep enough that 20% error rates never exhaust.
            retry=RetryPolicy(max_retries=32),
            health=DeviceHealthMonitor(open_error_rate=None),
        )
        engine = SemiExternalBFS.offload(
            workload.forward, workload.backward,
            AlphaBetaPolicy(alpha, alpha), store,
            cost_model=DramCostModel(),
        )
        output = driver.run(engine)
        parents = [r.result.parent for r in output.runs]
        return (
            output.stats_modeled.median_teps,
            ResilienceSummary.from_store(store),
            parents,
        )

    def run_all():
        out = {}
        for device in (PCIE_FLASH, SATA_SSD):
            for rate in FAULT_RATES:
                key = f"{device.name}-{rate}"
                out[(device.name, rate)] = run_one(device, rate, key)
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (device_name, rate), (teps, summary, _) in out.items():
        base = out[(device_name, 0.0)][0]
        rows.append([
            device_name,
            f"{rate:.0%}",
            format_teps(teps),
            f"{teps / base:.2f}x",
            f"{summary.n_retries:,}",
            f"{summary.backoff_time_s * 1e3:.1f} ms",
            f"{summary.gc_pause_time_s * 1e3:.1f} ms",
        ])
    figure_report.add(
        "Ablation: TEPS vs injected fault rate (resilient read path)",
        ascii_table(
            ["device", "fault rate", "median TEPS", "vs fault-free",
             "retries", "backoff", "gc stall"],
            rows,
        ),
    )
    benchmark.extra_info["teps_by_fault_rate"] = {
        f"{d}:{r}": v[0] for (d, r), v in out.items()
    }

    for device in (PCIE_FLASH, SATA_SSD):
        base_teps, _, base_parents = out[(device.name, 0.0)]
        worst_teps = out[(device.name, FAULT_RATES[-1])][0]
        # Faults cost time, never correctness: every faulted run yields
        # bit-identical parent trees to the fault-free run...
        for rate in FAULT_RATES[1:]:
            parents = out[(device.name, rate)][2]
            assert all(
                np.array_equal(p, q) for p, q in zip(parents, base_parents)
            )
            assert out[(device.name, rate)][1].n_retries > 0
        # ...and the heaviest fault rate visibly costs modeled time.
        assert worst_teps < base_teps
