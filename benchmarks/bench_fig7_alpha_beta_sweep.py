"""Figure 7 — TEPS heatmaps over the alpha × beta grid, per scenario.

Paper: DRAM-only peaks at 5.12 GTEPS (alpha=1e4, beta=10a); DRAM+PCIeFlash
at 4.22 GTEPS (alpha=1e6, beta=1a); DRAM+SSD at 2.76 GTEPS (alpha=1e5,
beta=0.1a).  The semi-external scenarios prefer *larger* alpha (switch to
bottom-up earlier) than DRAM-only — the heatmap topology this bench
checks.  Alpha values are the paper grid rescaled to the bench SCALE
(threshold-preserving; see repro.analysis.sweep).
"""

import numpy as np
import pytest

from repro.analysis.perfcompare import build_engine
from repro.analysis.sweep import alpha_beta_sweep, scaled_alpha_grid
from repro.core import PAPER_SCENARIOS

from conftest import BENCH_SEED, N_ROOTS


@pytest.mark.parametrize("scenario", PAPER_SCENARIOS, ids=lambda s: s.name)
def test_fig7_alpha_beta_sweep(
    benchmark, figure_report, workload, tmp_path, scenario
):
    def sweep():
        return alpha_beta_sweep(
            lambda a, b: build_engine(
                scenario, workload.forward, workload.backward, a, b, tmp_path
            ),
            workload.edges,
            scenario.name,
            n_roots=N_ROOTS,
            seed=BENCH_SEED,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    alpha, beta, teps = result.best()
    figure_report.add(
        f"Figure 7: alpha x beta sweep — {scenario.name} "
        f"(best: alpha={alpha:.3g}, beta={beta:.3g}, {teps / 1e9:.2f} GTEPS)",
        result.format(),
    )
    benchmark.extra_info["best"] = {
        "alpha": alpha, "beta": beta, "gteps": teps / 1e9,
    }
    benchmark.extra_info["grid_gteps"] = (result.teps / 1e9).round(3).tolist()

    assert (result.teps > 0).all()
    if scenario.is_semi_external:
        # Semi-external scenarios must not peak at the *smallest* alpha:
        # early switching away from the NVM-bound top-down pays off.
        alphas = np.array(result.alphas)
        best_alpha_idx = int(
            np.unravel_index(np.argmax(result.teps), result.teps.shape)[0]
        )
        assert best_alpha_idx >= 1 or np.isclose(
            result.teps.max(), result.teps[0].max(), rtol=0.05
        ), f"semi-external best alpha unexpectedly minimal: {alphas}"
