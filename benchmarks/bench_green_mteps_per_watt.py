"""Green Graph500 — MTEPS/W of the paper's submission (§VIII, abstract).

Paper: 4.35 MTEPS/W on a Huawei 4-way machine with 500 GB DRAM and 4 TB of
NVM (Green Graph500, November 2013, Big Data category, rank 4), at the
implementation's 4.22 GTEPS.

The bench evaluates the component power model for all machine
configurations and checks the submission lands on the paper's figure.
"""

import pytest

from repro.analysis.report import ascii_table
from repro.perfmodel.power import MachinePowerModel


def test_green_mteps_per_watt(benchmark, figure_report):
    machines = {
        "DRAM-only (Table I)": MachinePowerModel.paper_dram_only(),
        "DRAM+PCIeFlash (Table I)": MachinePowerModel.paper_pcie_flash(),
        "DRAM+SSD (Table I)": MachinePowerModel.paper_sata_ssd(),
        "Green submission (Huawei)": MachinePowerModel.green_graph500_submission(),
    }
    teps = 4.22e9  # the implementation's best semi-external score

    def evaluate():
        return {
            name: (m.total_watts, m.mteps_per_watt(teps))
            for name, m in machines.items()
        }

    results = benchmark(evaluate)

    rows = [
        [name, f"{watts:.0f} W", f"{mpw:.2f}"]
        for name, (watts, mpw) in results.items()
    ]
    figure_report.add(
        "Green Graph500: MTEPS/W at 4.22 GTEPS (paper: 4.35 MTEPS/W, "
        "Nov 2013 Big Data rank 4)",
        ascii_table(["machine", "power", "MTEPS/W"], rows),
    )
    benchmark.extra_info["green_mteps_per_watt"] = results[
        "Green submission (Huawei)"
    ][1]

    submission = results["Green submission (Huawei)"][1]
    assert submission == pytest.approx(4.35, abs=0.25)
