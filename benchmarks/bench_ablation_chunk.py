"""Ablation — NVM read chunk size (the paper fixes 4 KB; §V-C).

Sweeps the maximum ``read(2)`` size of the semi-external reader.  Expected
shape: tiny chunks multiply request counts (IOPS-bound, slower); large
chunks waste bandwidth on short CSR rows without helping latency-bound
levels much — 4 KB sits near the flat part of the curve, supporting the
paper's choice.
"""

from repro.analysis.report import ascii_table, format_teps
from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH

from conftest import BENCH_SEED, N_ROOTS

CHUNKS = (512, 1024, 4096, 16384, 65536)


def test_ablation_chunk_size(benchmark, figure_report, workload, tmp_path):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 30.0 * workload.n / (1 << 15)

    def run_all():
        out = {}
        for chunk in CHUNKS:
            store = NVMStore(
                tmp_path / f"c{chunk}", PCIE_FLASH,
                concurrency=workload.topology.n_cores,
                chunk_bytes=chunk,
                max_request_bytes=max(chunk, 128 * 1024),
            )
            engine = SemiExternalBFS.offload(
                workload.forward, workload.backward,
                AlphaBetaPolicy(alpha, alpha), store,
                cost_model=DramCostModel(),
            )
            teps = driver.run(engine).stats_modeled.median_teps
            out[chunk] = (teps, store.n_syscalls, store.iostats.n_requests)
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [f"{chunk} B", format_teps(teps), f"{syscalls:,}", f"{reqs:,}"]
        for chunk, (teps, syscalls, reqs) in out.items()
    ]
    figure_report.add(
        "Ablation: read chunk size (paper uses 4 KB)",
        ascii_table(
            ["chunk", "median TEPS", "read(2) calls", "device requests"],
            rows,
        ),
    )
    benchmark.extra_info["teps_by_chunk"] = {
        str(k): v[0] for k, v in out.items()
    }

    # Bigger chunks mean fewer syscalls, monotonically.
    syscalls = [out[c][1] for c in CHUNKS]
    assert all(a >= b for a, b in zip(syscalls, syscalls[1:]))
    # 4 KB performs within a small factor of the best chunk size.
    best = max(v[0] for v in out.values())
    assert out[4096][0] > best / 2
