"""Figure 8 — BFS TEPS across scenarios and switching parameters (large
SCALE: the forward graph exceeds the spare DRAM, so top-down levels
genuinely hit the device).

Paper (SCALE 27): DRAM-only 5.12 GTEPS; DRAM+PCIeFlash 4.22 GTEPS
(−19.18 %); DRAM+SSD 2.76 GTEPS (−47.1 %); top-down only 0.6; bottom-up
only 0.4; Graph500 reference 0.04.

Reproduced shape (asserted): DRAM-only > PCIeFlash > SSD at each
scenario's best (α, β); every tuned scenario beats the single-direction
baselines; the reference is orders of magnitude below DRAM-only.  The
absolute degradation percentages are larger at bench scale because the
handful of small-frontier top-down levels is not amortized by a 0.35 s
run (see EXPERIMENTS.md).
"""

from repro.analysis.perfcompare import compare_scenarios
from repro.analysis.report import ascii_table, format_teps
from repro.analysis.sweep import scaled_alpha_grid
from repro.core import PAPER_SCENARIOS

from conftest import BENCH_SEED, N_ROOTS


def test_fig8_scenario_comparison(benchmark, figure_report, workload, tmp_path):
    alphas = scaled_alpha_grid(workload.n)
    points = tuple((a, f * a) for a in alphas for f in (0.1, 1.0, 10.0))

    def compare():
        return compare_scenarios(
            workload.edges,
            workload.csr,
            workload.forward,
            workload.backward,
            PAPER_SCENARIOS,
            points,
            tmp_path,
            n_roots=N_ROOTS,
            seed=BENCH_SEED,
        )

    series = benchmark.pedantic(compare, rounds=1, iterations=1)

    headers = ["series"] + [f"a={a:.3g},b={b:.3g}" for a, b in points]
    rows = [[s.name] + [format_teps(t) for t in s.teps] for s in series]
    best = {s.name: s.best() for s in series}
    summary = [
        [name, f"a={a:.3g}", f"b={b:.3g}", format_teps(t)]
        for name, (a, b, t) in best.items()
    ]
    dram = best["DRAM-only"][2]
    for name in ("DRAM+PCIeFlash", "DRAM+SSD"):
        summary.append(
            [f"{name} degradation", "", "", f"{1 - best[name][2] / dram:.1%}"]
        )
    figure_report.add(
        f"Figure 8: scenario comparison @ SCALE {workload.scale} "
        "(paper @ 27: 5.12 / 4.22 (-19.18%) / 2.76 (-47.1%) GTEPS; "
        "baselines 0.6 / 0.4 / 0.04)",
        ascii_table(headers, rows) + "\n\nbest per series:\n"
        + ascii_table(["series", "alpha", "beta", "median TEPS"], summary),
    )
    benchmark.extra_info["best_gteps"] = {
        k: v[2] / 1e9 for k, v in best.items()
    }

    # The paper's ordering at best tuning.
    assert best["DRAM-only"][2] > best["DRAM+PCIeFlash"][2]
    assert best["DRAM+PCIeFlash"][2] > best["DRAM+SSD"][2]
    assert best["DRAM-only"][2] > best["Top-down only"][2]
    assert best["DRAM-only"][2] > best["Bottom-up only"][2]
    assert best["Graph500 reference"][2] < best["Top-down only"][2]
    assert best["Graph500 reference"][2] < best["DRAM-only"][2] / 10
