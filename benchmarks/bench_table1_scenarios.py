"""Table I — machine configurations.

Renders the three scenario presets with their device models and verifies
the capacity relationships Table I implies (the benchmark payload times
scenario construction + offload planning, which is what a user pays per
configuration).
"""

from repro.analysis.report import ascii_table
from repro.core import PAPER_SCENARIOS
from repro.core.offload import OffloadPlanner, StructureSizes
from repro.perfmodel.sizes import GraphSizeModel
from repro.util.units import GIB, format_bytes


def test_table1_scenarios(benchmark, figure_report):
    model = GraphSizeModel()
    b27 = model.breakdown(27)
    sizes = StructureSizes(
        edge_list=b27.edge_list,
        forward=b27.forward,
        backward=b27.backward,
        status=b27.status,
    )

    def build_and_plan():
        rows = []
        for scenario in PAPER_SCENARIOS:
            planner = OffloadPlanner(scenario)
            min_dram = planner.min_dram_bytes(sizes)
            rows.append(
                (
                    scenario.name,
                    scenario.device.name if scenario.device else "N/A",
                    f"alpha={scenario.alpha:g}",
                    f"beta={scenario.beta:g}",
                    format_bytes(min_dram),
                )
            )
        return rows

    rows = benchmark(build_and_plan)
    body = ascii_table(
        ["scenario", "NVM device", "alpha", "beta", "min DRAM @ SCALE 27"],
        rows,
    )
    figure_report.add("Table I: machine configurations", body)
    benchmark.extra_info["rows"] = [list(r) for r in rows]

    # The paper's capacity claim: the offloaded placement runs in 64 GB,
    # the DRAM-only one does not.
    semi = OffloadPlanner(PAPER_SCENARIOS[1]).min_dram_bytes(sizes)
    dram = OffloadPlanner(PAPER_SCENARIOS[0]).min_dram_bytes(sizes)
    assert semi < 64 * GIB < dram
