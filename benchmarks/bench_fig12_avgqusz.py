"""Figure 12 — average request-queue length (iostat avgqu-sz) during BFS.

Paper: 36.1 on PCIe flash and 56.1 on the SATA SSD, averaged over the
64-iteration benchmark; the authors read the long queues as "many I/O
request wait situations" that a higher-IOPS device would drain.

Reproduced shape: both devices sustain deep queues (tens of requests,
near the 48-worker ceiling of the closed-system model) and the slower
SSD's queue is at least as long as the PCIe flash's.
"""

from repro.analysis.iotrace import summarize_iostats
from repro.analysis.report import ascii_table
from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD

from conftest import BENCH_SEED, N_ROOTS


def run_iostat_benchmark(workload, tmp_path, devices=None):
    """Run the benchmark loop against each device, returning its meters.

    Shared by the Figure 12 and Figure 13 benches (same experiment, two
    statistics — exactly as the paper reads one iostat capture twice).
    """
    if devices is None:
        devices = (("PCIeFlash", PCIE_FLASH), ("SSD", SATA_SSD))
    alpha = 30.0 * workload.n / (1 << 15)
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    out = {}
    for name, dev in devices:
        store = NVMStore(
            tmp_path / f"io-{name}", dev,
            concurrency=workload.topology.n_cores,
        )
        engine = SemiExternalBFS.offload(
            workload.forward, workload.backward,
            AlphaBetaPolicy(alpha, alpha), store,
            cost_model=DramCostModel(),
        )
        driver.run(engine)
        out[name] = summarize_iostats(store.iostats)
    return out


def test_fig12_avgqusz(benchmark, figure_report, workload, tmp_path):
    out = benchmark.pedantic(
        lambda: run_iostat_benchmark(workload, tmp_path),
        rounds=1, iterations=1,
    )
    rows = [
        [name, f"{s.avgqu_sz:.1f}", f"{s.queue.max():.1f}",
         f"{s.total_requests:,}"]
        for name, s in out.items()
    ]
    figure_report.add(
        "Figure 12: avgqu-sz during BFS (paper: 36.1 PCIe / 56.1 SSD)",
        ascii_table(["device", "avgqu-sz", "max queue", "requests"], rows),
    )
    benchmark.extra_info["avgqu_sz"] = {
        name: s.avgqu_sz for name, s in out.items()
    }

    pcie, ssd = out["PCIeFlash"], out["SSD"]
    # Deep queues on both devices (paper: 36.1 / 56.1 with 48 workers);
    # the slower SSD is the more congested one.
    assert 10 < pcie.avgqu_sz <= 48 + 1e-6
    assert 10 < ssd.avgqu_sz <= 48 + 1e-6
    assert ssd.avgqu_sz > pcie.avgqu_sz
