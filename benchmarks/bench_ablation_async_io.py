"""Ablation — synchronous read(2) vs libaio-style aggregation (§VI-D).

Paper: "we may exploit further I/O performance of the devices by
aggregating small I/O operations such as libaio library" — motivated by
the observed avgrq-sz of ~22 sectors (small requests) and avgqu-sz of
36–56 (request-wait pile-ups).

Measured: the same semi-external run with the storage layer in ``sync``
mode (the paper's implementation: one outstanding read per worker) versus
``async`` mode (batch submission at device queue depth, CPU overlapped).
Asserted: aggregation helps on both devices and helps the IOPS-starved
SATA SSD relatively more.
"""

from repro.analysis.report import ascii_table, format_teps
from repro.bfs import AlphaBetaPolicy, SemiExternalBFS
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD

from conftest import BENCH_SEED, N_ROOTS


def test_ablation_async_io(benchmark, figure_report, workload, tmp_path):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 30.0 * workload.n / (1 << 15)

    def run_all():
        out = {}
        for dev_name, device in (("PCIeFlash", PCIE_FLASH), ("SSD", SATA_SSD)):
            for mode in ("sync", "async"):
                store = NVMStore(
                    tmp_path / f"{dev_name}-{mode}", device,
                    concurrency=workload.topology.n_cores,
                    io_mode=mode,
                )
                engine = SemiExternalBFS.offload(
                    workload.forward, workload.backward,
                    AlphaBetaPolicy(alpha, alpha), store,
                    cost_model=DramCostModel(),
                )
                out[(dev_name, mode)] = driver.run(
                    engine
                ).stats_modeled.median_teps
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    speedups = {}
    for dev_name in ("PCIeFlash", "SSD"):
        sync = out[(dev_name, "sync")]
        async_ = out[(dev_name, "async")]
        speedups[dev_name] = async_ / sync
        rows.append(
            [dev_name, format_teps(sync), format_teps(async_),
             f"{speedups[dev_name]:.2f}x"]
        )
    figure_report.add(
        "Ablation: sync read(2) vs libaio-style aggregation "
        "(the paper's §VI-D headroom estimate)",
        ascii_table(["device", "sync", "async", "speedup"], rows),
    )
    benchmark.extra_info["speedups"] = speedups

    # The IOPS-bound PCIe flash must gain; the already bandwidth-bound
    # SATA SSD may at best break even (±batching noise).
    assert speedups["PCIeFlash"] >= 1.0
    assert speedups["SSD"] >= 0.9
    # Aggregation must help at least one device measurably — the
    # headroom the paper points at.
    assert max(speedups.values()) > 1.1
