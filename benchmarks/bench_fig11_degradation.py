"""Figure 11 — per-level top-down degradation ratio versus average degree.

Paper (alpha=1e4, beta=10a): PCIe flash degrades 1.2x-5758x and the SATA
SSD 2.8x-123482x relative to DRAM-only, exploding as the level's average
degree approaches 1; first top-down levels average ~11183 edges/vertex,
the last ones ~1.

Reproduced shape: the ratio spans orders of magnitude, is monotone-ish in
degree (low degree => worse), and the SSD curve sits above the PCIe one.
"""

import numpy as np

from repro.analysis.degradation import degradation_by_degree
from repro.analysis.report import ascii_table
from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH, SATA_SSD


def test_fig11_degradation(benchmark, figure_report, workload, tmp_path):
    # The paper's Figure 11 setting is alpha=1e4, beta=10a at SCALE 27 —
    # i.e. thresholds that leave both early AND late top-down levels.
    alpha = 30.0 * workload.n / (1 << 15)
    beta = alpha
    root = workload.a_root(5)

    def measure():
        dram = HybridBFS(
            workload.forward, workload.backward,
            AlphaBetaPolicy(alpha, beta), DramCostModel(),
        ).run(root)
        out = {}
        for name, dev in (("PCIeFlash", PCIE_FLASH), ("SSD", SATA_SSD)):
            store = NVMStore(tmp_path / name, dev)
            nvm = SemiExternalBFS.offload(
                workload.forward, workload.backward,
                AlphaBetaPolicy(alpha, beta), store,
                cost_model=DramCostModel(),
            ).run(root)
            out[name] = degradation_by_degree(dram, nvm)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, points in out.items():
        for p in points:
            rows.append(
                [name, p.level, f"{p.avg_degree:.1f}", f"{p.ratio:.1f}x"]
            )
    figure_report.add(
        f"Figure 11: top-down degradation vs avg degree @ SCALE {workload.scale} "
        "(paper: PCIe 1.2-5758x, SSD 2.8-123482x, exploding near degree 1)",
        ascii_table(["device", "level", "avg degree", "NVM/DRAM time"], rows),
    )
    benchmark.extra_info["ratios"] = {
        name: [(p.avg_degree, p.ratio) for p in points]
        for name, points in out.items()
    }

    for name, points in out.items():
        assert len(points) >= 2, f"{name}: need early and late TD levels"
        ratios = np.array([p.ratio for p in points])
        degrees = np.array([p.avg_degree for p in points])
        # Low-degree levels degrade worse than high-degree ones.
        assert ratios[np.argmin(degrees)] > ratios[np.argmax(degrees)]
        assert ratios.min() >= 1.0
        # The blow-up spans at least an order of magnitude.
        assert ratios.max() / ratios.min() > 10
    # SSD worse than PCIe at every paired level.
    pcie = {p.level: p.ratio for p in out["PCIeFlash"]}
    ssd = {p.level: p.ratio for p in out["SSD"]}
    assert all(ssd[l] > pcie[l] for l in pcie)
