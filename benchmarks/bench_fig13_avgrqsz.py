"""Figure 13 — average request size in sectors (iostat avgrq-sz).

Paper: 22.6 sectors (PCIe flash) and 22.7 (SATA SSD) — virtually identical
across devices, because the request stream is a property of the access
pattern (4 KB-chunked CSR row reads merged by the block layer), not of the
device.  The paper reads the modest size as headroom for request
aggregation (libaio).

Reproduced shape: both devices see the same avgrq-sz (same stream), the
value sits in the tens-of-sectors regime (page-granular reads, partially
merged), and it is far below the merge ceiling.
"""

from repro.analysis.report import ascii_table
from repro.util.chunking import DEFAULT_MAX_MERGED_BYTES, SECTOR_BYTES

from bench_fig12_avgqusz import run_iostat_benchmark


def test_fig13_avgrqsz(benchmark, figure_report, workload, tmp_path):
    out = benchmark.pedantic(
        lambda: run_iostat_benchmark(workload, tmp_path),
        rounds=1, iterations=1,
    )
    rows = [
        [
            name,
            f"{s.avgrq_sz:.1f}",
            f"{s.total_bytes / max(s.total_requests, 1) / 1024:.1f} KB",
            f"{s.total_requests:,}",
        ]
        for name, s in out.items()
    ]
    figure_report.add(
        "Figure 13: avgrq-sz during BFS (paper: 22.6 / 22.7 sectors)",
        ascii_table(["device", "avgrq-sz (sectors)", "mean req", "requests"],
                    rows),
    )
    benchmark.extra_info["avgrq_sz"] = {
        name: s.avgrq_sz for name, s in out.items()
    }

    pcie, ssd = out["PCIeFlash"], out["SSD"]
    # Identical streams => identical request sizes (paper: 22.6 vs 22.7).
    assert abs(pcie.avgrq_sz - ssd.avgrq_sz) < 0.5
    # Page-granular (>= 8 sectors) but nowhere near the merge ceiling.
    ceiling = DEFAULT_MAX_MERGED_BYTES / SECTOR_BYTES
    assert 8.0 <= pcie.avgrq_sz < ceiling / 2
