"""Serving ablation — NVM bytes per query versus traversal batch size.

Runs the same 8 BFS queries through :class:`~repro.serve.engine.BatchedBFS`
at batch sizes 1, 2, 4 and 8 on the PCIe-flash scenario (result cache and
page cache disabled, so the only sharing left is the union-frontier chunk
fetch) and measures device bytes read per query plus modeled TEPS.

Expected shape — the serving-time restatement of §V device-traffic
minimization: bytes per query fall **monotonically** as the batch grows,
because a forward-graph chunk wanted by k in-flight queries is fetched
and charged once instead of k times; and the batched parent trees are
bit-identical to the unbatched ones at every batch size (validated via
``graph500.validate``), i.e. the amortization is free of any accuracy
trade.
"""

import numpy as np

from repro.analysis.report import ascii_table, format_teps
from repro.core import DRAM_PCIE_FLASH
from repro.graph500 import validate_bfs_tree
from repro.obs import Observability
from repro.serve import BatchedBFS, GraphCatalog

from conftest import BENCH_SEED, SMALL_SCALE

BATCH_SIZES = (1, 2, 4, 8)
N_QUERIES = 8
WORKER_COUNTS = (1, 2, 4)


def test_serve_batching_amortization(benchmark, figure_report, tmp_path):
    # The Table I pcie thresholds (α = β = 1e6) leave only level 0
    # top-down at bench scale — no device traffic to share.  Scale them
    # down so several levels stay top-down, as at paper scale.
    n = 1 << SMALL_SCALE
    alpha = beta = n / 128.0

    def run_one(batch_size):
        catalog = GraphCatalog(workdir=tmp_path / f"b{batch_size}")
        graph = catalog.build(
            "g", DRAM_PCIE_FLASH, scale=SMALL_SCALE, seed=BENCH_SEED,
            alpha=alpha, beta=beta, page_cache_bytes=0,
        )
        roots = [
            int(r) for r in np.flatnonzero(graph.degrees > 0)[:N_QUERIES]
        ]
        engine = BatchedBFS(graph)
        trees = {}
        traversed = 0
        t0 = graph.clock.now()
        for i in range(0, len(roots), batch_size):
            for res in engine.run_batch(roots[i:i + batch_size]):
                trees[res.root] = res.parent
                traversed += res.traversed_edges
        modeled_s = graph.clock.now() - t0
        nvm_bytes = graph.store.iostats.total_bytes
        shared = (
            engine.rows_requested / engine.rows_fetched
            if engine.rows_fetched else 1.0
        )
        catalog.close()
        return {
            "edges": graph.edges,
            "roots": roots,
            "trees": trees,
            "nvm_bytes": nvm_bytes,
            "teps": traversed / modeled_s if modeled_s else 0.0,
            "sharing": shared,
        }

    def run_all():
        return {b: run_one(b) for b in BATCH_SIZES}

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    base = out[1]["nvm_bytes"]
    for b in BATCH_SIZES:
        r = out[b]
        rows.append([
            b,
            f"{r['nvm_bytes'] / N_QUERIES:,.0f}",
            f"{r['nvm_bytes'] / base:.2f}x",
            f"{r['sharing']:.2f}x",
            format_teps(r["teps"]),
        ])
    figure_report.add(
        "Serving: NVM bytes/query vs batch size (shared chunk fetches)",
        ascii_table(
            ["batch", "nvm bytes/query", "vs unbatched",
             "row sharing", "modeled TEPS"],
            rows,
        ),
    )
    benchmark.extra_info["nvm_bytes_by_batch"] = {
        str(b): out[b]["nvm_bytes"] for b in BATCH_SIZES
    }

    # Monotone non-increasing device traffic as the batch grows, with a
    # strict overall win from 1 -> 8.
    totals = [out[b]["nvm_bytes"] for b in BATCH_SIZES]
    assert all(a >= b for a, b in zip(totals, totals[1:])), totals
    assert totals[-1] < totals[0], totals

    # Batching never changes an answer: every batch size reproduces the
    # unbatched parent trees exactly, and all trees validate.
    reference = out[1]
    for b in BATCH_SIZES[1:]:
        for root in reference["roots"]:
            assert np.array_equal(
                out[b]["trees"][root], reference["trees"][root]
            ), (b, root)
    for root in reference["roots"]:
        assert validate_bfs_tree(
            reference["edges"], root, reference["trees"][root]
        )


def test_partitioned_serving_per_worker_count(benchmark, figure_report,
                                              tmp_path):
    """Same 8 queries through a partitioned catalog deployment at worker
    counts 1, 2 and 4 — device bytes per query, modeled p99 query
    latency, and byte-identical trees at every count."""
    n = 1 << SMALL_SCALE
    alpha = beta = n / 128.0

    def run_one(n_workers):
        from repro.dist.serve import DistributedEngine

        obs = Observability()
        catalog = GraphCatalog(workdir=tmp_path / f"w{n_workers}", obs=obs)
        graph = catalog.build_partitioned(
            "g", DRAM_PCIE_FLASH, scale=SMALL_SCALE, seed=BENCH_SEED,
            n_partitions=n_workers, alpha=alpha, beta=beta,
        )
        roots = [
            int(r) for r in np.flatnonzero(graph.degrees > 0)[:N_QUERIES]
        ]
        engine = DistributedEngine(graph, obs=obs)
        trees = {}
        for res in engine.run_batch(roots):
            trees[res.root] = res.parent
        latencies = np.array([
            e.attrs["latency_s"]
            for e in obs.tracer.events if e.name == "dist.query"
        ])
        nvm_bytes = graph.worker_nvm_bytes()
        catalog.close()
        return {
            "roots": roots,
            "trees": trees,
            "bytes_per_query": nvm_bytes / N_QUERIES,
            "p99_s": float(np.percentile(latencies, 99)),
            "mean_s": float(latencies.mean()),
        }

    def run_all():
        return {w: run_one(w) for w in WORKER_COUNTS}

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            w,
            f"{out[w]['bytes_per_query']:,.0f}",
            f"{out[w]['mean_s'] * 1e3:.3f}",
            f"{out[w]['p99_s'] * 1e3:.3f}",
        ]
        for w in WORKER_COUNTS
    ]
    figure_report.add(
        "Partitioned serving: bytes/query and p99 latency vs worker count",
        ascii_table(
            ["workers", "nvm bytes/query", "mean query ms", "p99 query ms"],
            rows,
        ),
    )
    benchmark.extra_info["p99_s_by_workers"] = {
        str(w): out[w]["p99_s"] for w in WORKER_COUNTS
    }

    # Partitioning is invisible to correctness: every worker count
    # reproduces the single-worker trees byte for byte.
    reference = out[WORKER_COUNTS[0]]
    for w in WORKER_COUNTS[1:]:
        assert out[w]["roots"] == reference["roots"]
        for root in reference["roots"]:
            assert (
                out[w]["trees"][root].tobytes()
                == reference["trees"][root].tobytes()
            ), (w, root)

    # Spreading one traversal over more workers cuts its p99: each level
    # costs the max worker step, and partitions shrink with the fleet.
    assert out[4]["p99_s"] < out[1]["p99_s"]
