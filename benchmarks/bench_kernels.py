"""Microbenchmarks of the hot kernels (pytest-benchmark proper).

These are classic timing benchmarks (many rounds, statistics) of the
primitives everything else is built on: bitmap membership tests, CSR
construction, the two step kernels, and the chunk planner.  They guard
against performance regressions in the vectorized paths.
"""

import numpy as np
import pytest

from repro.bfs.bottomup import InMemoryScanner, bottom_up_step
from repro.bfs.state import BFSState
from repro.bfs.topdown import top_down_step
from repro.csr.builder import build_csr
from repro.util.bitmap import Bitmap
from repro.util.chunking import plan_chunks
from repro.util.gather import concat_ranges, first_true_per_segment


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


def test_kernel_bitmap_test_many(benchmark, workload, rng):
    bm = Bitmap.from_indices(
        workload.n, rng.integers(0, workload.n, workload.n // 4)
    )
    queries = rng.integers(0, workload.n, 1 << 20)
    out = benchmark(bm.test_many, queries)
    assert out.shape == queries.shape


def test_kernel_bitmap_set_many(benchmark, workload, rng):
    indices = rng.integers(0, workload.n, 1 << 18)

    def setup():
        return (Bitmap(workload.n), indices), {}

    benchmark.pedantic(
        lambda bm, idx: bm.set_many(idx), setup=setup, rounds=20
    )


def test_kernel_csr_build(benchmark, workload):
    g = benchmark(build_csr, workload.edges)
    assert g.n_rows == workload.n


def test_kernel_concat_ranges(benchmark, workload, rng):
    rows = rng.integers(0, workload.n, 1 << 16)
    starts, counts = workload.csr.row_extents(rows)
    out = benchmark(concat_ranges, starts, counts)
    assert out.size == counts.sum()


def test_kernel_first_true(benchmark, workload, rng):
    rows = rng.integers(0, workload.n, 1 << 16)
    _, counts = workload.csr.row_extents(rows)
    mask = rng.random(int(counts.sum())) < 0.05
    hit, scanned = benchmark(first_true_per_segment, mask, counts)
    assert scanned.size == counts.size


def test_kernel_top_down_step(benchmark, workload):
    root = workload.a_root(2)

    def setup():
        state = BFSState(workload.n, workload.topology, root)
        return (list(workload.forward.shards), state), {}

    benchmark.pedantic(
        lambda shards, state: top_down_step(shards, state),
        setup=setup,
        rounds=20,
    )


def test_kernel_bottom_up_step(benchmark, workload):
    root = workload.a_root(2)
    scanners = [InMemoryScanner(s) for s in workload.backward.shards]

    def setup():
        state = BFSState(workload.n, workload.topology, root)
        # A mid-BFS frontier: the root's 2-hop neighborhood.
        _ = top_down_step(list(workload.forward.shards), state)
        return (scanners, state), {}

    benchmark.pedantic(
        lambda sc, state: bottom_up_step(sc, state), setup=setup, rounds=10
    )


def test_kernel_plan_chunks(benchmark, workload, rng):
    rows = rng.integers(0, workload.n, 1 << 14)
    starts, counts = workload.csr.row_extents(rows)
    plan = benchmark(plan_chunks, starts * 8, counts * 8)
    assert plan.total_bytes == int(counts.sum()) * 8
