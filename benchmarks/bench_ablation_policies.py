"""Ablation — direction-switch policies (DESIGN.md §6).

Compares the paper's frontier-count alpha/beta rule against Beamer et
al.'s edge-count heuristic and the two fixed directions, on the same graph
and roots.  Expected: both hybrid policies approach each other and beat
the fixed directions by a wide margin (the hybrid claim is robust to the
switching heuristic; the thresholds only tune the margins).
"""

from repro.analysis.report import ascii_table, format_teps
from repro.bfs import (
    AlphaBetaPolicy,
    BeamerPolicy,
    Direction,
    FixedPolicy,
    HybridBFS,
)
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel

from conftest import BENCH_SEED, N_ROOTS


def test_ablation_policies(benchmark, figure_report, workload):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 244.0 * workload.n / (1 << 15)
    policies = {
        "alpha/beta (paper)": AlphaBetaPolicy(alpha, alpha),
        "Beamer edge-count": BeamerPolicy(),
        "top-down only": FixedPolicy(Direction.TOP_DOWN),
        "bottom-up only": FixedPolicy(Direction.BOTTOM_UP),
    }

    def run_all():
        return {
            name: driver.run(
                HybridBFS(
                    workload.forward, workload.backward, policy,
                    DramCostModel(),
                )
            ).stats_modeled.median_teps
            for name, policy in policies.items()
        }

    teps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[name, format_teps(t)] for name, t in teps.items()]
    figure_report.add(
        "Ablation: direction policies (median modeled TEPS)",
        ascii_table(["policy", "median TEPS"], rows),
    )
    benchmark.extra_info["gteps"] = {k: v / 1e9 for k, v in teps.items()}

    hybrid_floor = min(teps["alpha/beta (paper)"], teps["Beamer edge-count"])
    assert hybrid_floor > 3 * teps["top-down only"]
    assert hybrid_floor > 3 * teps["bottom-up only"]
    # The two hybrid heuristics land within a small factor of each other.
    ratio = teps["alpha/beta (paper)"] / teps["Beamer edge-count"]
    assert 1 / 3 < ratio < 3
