"""Figure 3 — breakdown of graph size at each SCALE.

Paper anchors: at SCALE 31 the graph totals 1.5 TB with the edge list at
384 GB, the forward graph at 640 GB and the backward graph at 528 GB; the
forward graph always exceeds the backward graph.
"""

from repro.analysis.report import ascii_table
from repro.perfmodel.sizes import GraphSizeModel
from repro.util.units import GIB, TIB


def test_fig3_size_breakdown(benchmark, figure_report):
    model = GraphSizeModel()
    scales = range(20, 32)

    rows_out = benchmark(lambda: model.sweep(scales))

    rows = [
        [
            b.scale,
            f"{b.edge_list / GIB:.0f} GB",
            f"{b.forward / GIB:.0f} GB",
            f"{b.backward / GIB:.0f} GB",
            f"{b.graph_total / GIB:.0f} GB",
        ]
        for b in rows_out
    ]
    figure_report.add(
        "Figure 3: size breakdown per SCALE (edge list / forward / backward)",
        ascii_table(["SCALE", "edge list", "forward", "backward", "total"], rows),
    )
    benchmark.extra_info["scale31_total_tib"] = rows_out[-1].graph_total / TIB

    b31 = model.breakdown(31)
    assert abs(b31.edge_list / GIB - 384) < 1
    assert abs(b31.forward / GIB - 640) < 1
    assert abs(b31.backward / GIB - 528) < 1
    assert 1.45 < b31.graph_total / TIB < 1.55  # "reaches 1.5 TB"
    for b in rows_out:
        assert b.forward > b.backward  # the paper's ordering observation
        # Exponential growth: each SCALE doubles the edge-proportional parts.
    assert rows_out[1].edge_list == 2 * rows_out[0].edge_list
