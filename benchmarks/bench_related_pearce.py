"""Related-work comparison — fully-external BFS (paper §VII).

Paper: Pearce et al.'s everything-on-NVM traversal reaches 0.05 GTEPS
(SCALE 36, 1 TB DRAM + 12 TB NVM), which the paper contrasts with its own
4.22 GTEPS at a higher DRAM:NVM ratio — "a good compromise is achievable
between performance vs. capacity ratio".

Measured: the same three-way trade-off on one graph and device — in-DRAM
hybrid, semi-external hybrid (forward graph offloaded), fully-external
top-down (everything offloaded) — with the bytes each keeps in DRAM.
Asserted: each step down the DRAM ladder costs throughput, and the
fully-external baseline sits orders of magnitude below in-DRAM while the
semi-external point recovers most of the performance at a fraction of
the DRAM.
"""

from repro.analysis.report import ascii_table, format_teps
from repro.bfs import AlphaBetaPolicy, FullyExternalBFS, HybridBFS, SemiExternalBFS
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore, PCIE_FLASH
from repro.util.units import format_bytes

from conftest import BENCH_SEED, N_ROOTS


def test_related_pearce_fully_external(
    benchmark, figure_report, workload, tmp_path
):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 244.0 * workload.n / (1 << 15)

    def run_three():
        out = {}
        dram_engine = HybridBFS(
            workload.forward, workload.backward,
            AlphaBetaPolicy(alpha, alpha), DramCostModel(),
        )
        out["in-DRAM hybrid (NETAL)"] = (
            driver.run(dram_engine).stats_modeled.median_teps,
            workload.forward.nbytes + workload.backward.nbytes,
        )
        store_semi = NVMStore(
            tmp_path / "semi", PCIE_FLASH,
            concurrency=workload.topology.n_cores,
        )
        semi = SemiExternalBFS.offload(
            workload.forward, workload.backward,
            AlphaBetaPolicy(alpha, alpha), store_semi,
            cost_model=DramCostModel(),
        )
        out["semi-external hybrid (paper)"] = (
            driver.run(semi).stats_modeled.median_teps,
            workload.backward.nbytes,
        )
        store_full = NVMStore(
            tmp_path / "full", PCIE_FLASH,
            concurrency=workload.topology.n_cores,
        )
        full = FullyExternalBFS.offload(
            workload.csr, store_full, cost_model=DramCostModel()
        )
        out["fully-external top-down (Pearce-style)"] = (
            driver.run(full).stats_modeled.median_teps,
            0,
        )
        return out

    out = benchmark.pedantic(run_three, rounds=1, iterations=1)

    rows = [
        [name, format_teps(teps), format_bytes(dram)]
        for name, (teps, dram) in out.items()
    ]
    figure_report.add(
        "Related work (paper §VII): DRAM-residency ladder "
        "(paper: 4.22 GTEPS semi-external vs 0.05 GTEPS fully-external)",
        ascii_table(["approach", "median TEPS", "graph bytes in DRAM"], rows),
    )
    benchmark.extra_info["gteps"] = {
        k: v[0] / 1e9 for k, v in out.items()
    }

    dram = out["in-DRAM hybrid (NETAL)"][0]
    semi = out["semi-external hybrid (paper)"][0]
    full = out["fully-external top-down (Pearce-style)"][0]
    assert dram > semi > full
    # The paper's headline contrast: semi-external beats fully-external
    # by a wide margin (4.22 vs 0.05 GTEPS, ~84x).  The measured factor
    # grows with SCALE (3.5x @14, 11x @15); assert the direction plus a
    # floor, and that fully-external sits orders below in-DRAM.
    assert semi > 2 * full
    assert dram > 20 * full
