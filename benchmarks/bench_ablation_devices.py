"""Ablation — device families (paper §VIII future work).

"Future work includes ... performance studies on various NVM devices."
Sweeps the semi-external configuration across the device catalog, from a
spinning disk to storage-class memory, at the paper's best-style tuning.
Expected: median TEPS strictly ordered by the devices' random-read
capability, with the HDD catastrophic (seek-bound) and Optane-class
closing most of the gap to DRAM-only — the paper's §VI-D extrapolation
that higher-IOPS devices "can instantly evacuate I/O requests".
"""

from repro.analysis.report import ascii_table, format_teps
from repro.bfs import AlphaBetaPolicy, HybridBFS, SemiExternalBFS
from repro.graph500 import Graph500Driver
from repro.perfmodel.cost import DramCostModel
from repro.semiext import NVMStore
from repro.semiext.device import DEVICE_CATALOG

from conftest import BENCH_SEED, N_ROOTS


def test_ablation_device_families(benchmark, figure_report, workload, tmp_path):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 244.0 * workload.n / (1 << 15)

    def run_all():
        out = {}
        out["(DRAM-only)"] = driver.run(
            HybridBFS(
                workload.forward, workload.backward,
                AlphaBetaPolicy(alpha, alpha), DramCostModel(),
            )
        ).stats_modeled.median_teps
        for i, device in enumerate(DEVICE_CATALOG):
            store = NVMStore(
                tmp_path / f"dev{i}", device,
                concurrency=workload.topology.n_cores,
            )
            engine = SemiExternalBFS.offload(
                workload.forward, workload.backward,
                AlphaBetaPolicy(alpha, alpha), store,
                cost_model=DramCostModel(),
            )
            out[device.name] = driver.run(engine).stats_modeled.median_teps
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    dram = out["(DRAM-only)"]
    rows = [
        [name, format_teps(teps), f"{1 - teps / dram:.1%}" if name != "(DRAM-only)" else "—"]
        for name, teps in out.items()
    ]
    figure_report.add(
        "Ablation: device families (semi-external, best-style tuning)",
        ascii_table(["device", "median TEPS", "degradation"], rows),
    )
    benchmark.extra_info["gteps"] = {k: v / 1e9 for k, v in out.items()}

    # TEPS ordered by the catalog's random-read capability (the two
    # top-end devices trade IOPS against latency and land together).
    series = [out[d.name] for d in DEVICE_CATALOG]
    assert all(a < b for a, b in zip(series[:4], series[1:4])), series
    assert min(series[3], series[4]) > series[2]
    # The HDD is catastrophic; storage-class memory closes most of the gap.
    assert series[0] < dram / 1000
    assert series[-1] > series[1] * 5  # Optane >> SATA SSD