"""Shared benchmark fixtures and the figure-report channel.

Every bench regenerates one table/figure of the paper.  The rows/series it
produces are (a) attached to the pytest-benchmark JSON via ``extra_info``
and (b) queued on the :class:`FigureReport` collector, which prints them in
the terminal summary — so ``pytest benchmarks/ --benchmark-only`` shows the
paper-comparable numbers without extra flags.

Workload size defaults to SCALE 15 (override with ``REPRO_BENCH_SCALE``);
the Figure 9 bench uses one SCALE lower, mirroring the paper's 27-vs-26
pairing.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.csr import BackwardGraph, ForwardGraph, build_csr
from repro.graph500 import EdgeList, generate_edges
from repro.numa import NumaTopology

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "15"))
SMALL_SCALE = BENCH_SCALE - 1
BENCH_SEED = 20140519
N_ROOTS = int(os.environ.get("REPRO_BENCH_ROOTS", "8"))


class FigureReport:
    """Collects per-figure text blocks for the terminal summary."""

    def __init__(self) -> None:
        self.sections: list[tuple[str, str]] = []

    def add(self, title: str, body: str) -> None:
        self.sections.append((title, body))


_REPORT = FigureReport()


@pytest.fixture(scope="session")
def figure_report() -> FigureReport:
    """The session-wide report collector."""
    return _REPORT


def pytest_terminal_summary(terminalreporter):
    if not _REPORT.sections:
        return
    terminalreporter.write_sep("=", "paper figure/table reproduction")
    for title, body in _REPORT.sections:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(body)


class Workload:
    """A fully built benchmark graph (edges, CSR, both partitions)."""

    def __init__(self, scale: int, seed: int = BENCH_SEED) -> None:
        self.scale = scale
        self.n = 1 << scale
        self.edges = EdgeList(generate_edges(scale, seed=seed), self.n)
        self.csr = build_csr(self.edges)
        self.topology = NumaTopology(4, 12)
        self.forward = ForwardGraph(self.csr, self.topology)
        self.backward = BackwardGraph(self.csr, self.topology)

    def a_root(self, i: int = 0) -> int:
        """The i-th non-isolated vertex (deterministic probe root)."""
        return int(np.flatnonzero(self.csr.degrees() > 0)[i])


@pytest.fixture(scope="session")
def workload() -> Workload:
    """The Figure 7/8/10..14 graph (SCALE ``REPRO_BENCH_SCALE``)."""
    return Workload(BENCH_SCALE)


@pytest.fixture(scope="session")
def small_workload() -> Workload:
    """The Figure 9 graph (one SCALE below, as the paper's 26 vs 27)."""
    return Workload(SMALL_SCALE)
