"""§VI-C schedule narrative — head/middle/tail decomposition.

Paper: "first several levels are conducted by top-down approaches ...
next several steps by bottom-up ... last several steps by top-down",
with the first top-down phase searching vertices of 11 182.9 average
degree and the last of average degree 1 — the asymmetry that makes the
tail top-down levels so expensive on NVM (Figure 11) and motivates
delaying the switch back (large β) on the offloaded configurations.
"""

import numpy as np

from repro.analysis import schedule_summary
from repro.analysis.report import ascii_table
from repro.bfs import AlphaBetaPolicy, HybridBFS
from repro.graph500 import sample_roots
from repro.perfmodel.cost import DramCostModel

from conftest import BENCH_SEED


def test_schedule_narrative(benchmark, figure_report, workload):
    alpha = 30.0 * workload.n / (1 << 15)
    roots = sample_roots(workload.csr.degrees(), n_roots=6, seed=BENCH_SEED)
    engine = HybridBFS(
        workload.forward, workload.backward,
        AlphaBetaPolicy(alpha, alpha), DramCostModel(),
    )

    def run_all():
        return [schedule_summary(engine.run(int(r))) for r in roots]

    summaries = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            s.schedule,
            s.n_td_head,
            s.n_bu_mid,
            s.n_td_tail,
            f"{s.head_avg_degree:.1f}",
            f"{s.tail_avg_degree:.1f}",
        ]
        for s in summaries
    ]
    figure_report.add(
        "Schedule narrative (paper §VI-C: T…T B…B T…T; head degree "
        "11182.9 vs tail degree 1)",
        ascii_table(
            ["schedule", "TD head", "BU mid", "TD tail",
             "head avg degree", "tail avg degree"],
            rows,
        ),
    )
    benchmark.extra_info["head_degrees"] = [
        s.head_avg_degree for s in summaries
    ]

    canonical = [s for s in summaries if s.is_canonical]
    assert canonical, "no run produced the canonical T...B...T schedule"
    with_tail = [s for s in canonical if s.n_td_tail]
    for s in with_tail:
        # The head phase searches far denser vertices than the tail.
        assert s.head_avg_degree > 10 * max(s.tail_avg_degree, 1.0)
        # The tail searches near-degree-1 vertices, as the paper reports.
        assert s.tail_avg_degree < 5.0
    # The decomposition always covers the whole schedule for canonical runs.
    for s in canonical:
        assert s.n_other == 0