"""Table II — graph size at SCALE 27 (edge factor 16).

Paper: forward 40.1 GB, backward 33.1 GB, BFS status 15.1 GB, total
88.3 GB.  The analytic model reproduces the paper layout; the measured
column reports this reproduction's actual int64 structures at bench scale
for comparison.
"""

from repro.analysis.report import ascii_table
from repro.bfs.state import BFSState
from repro.perfmodel.sizes import GraphSizeModel
from repro.util.units import GIB, format_bytes


def test_table2_graph_size(benchmark, figure_report, workload):
    model = GraphSizeModel()

    def compute():
        b = model.breakdown(27)
        state = BFSState(workload.n, workload.topology, workload.a_root())
        measured = GraphSizeModel.measured(
            workload.forward, workload.backward, state
        )
        return b, measured

    b, measured = benchmark(compute)

    paper = {"forward": 40.1, "backward": 33.1, "status": 15.1, "total": 88.3}
    rows = [
        ["Forward graph", f"{b.forward / GIB:.1f} GB", f"{paper['forward']} GB",
         format_bytes(measured.forward)],
        ["Backward graph", f"{b.backward / GIB:.1f} GB", f"{paper['backward']} GB",
         format_bytes(measured.backward)],
        ["BFS status data", f"{b.status / GIB:.1f} GB", f"{paper['status']} GB",
         format_bytes(measured.status)],
        ["Total", f"{b.working_set / GIB:.1f} GB", f"{paper['total']} GB",
         format_bytes(measured.forward + measured.backward + measured.status)],
    ]
    figure_report.add(
        "Table II: graph size (SCALE 27 model / paper / "
        f"measured @ SCALE {workload.scale})",
        ascii_table(["structure", "model", "paper", "measured"], rows),
    )
    benchmark.extra_info["model_gib"] = {
        "forward": b.forward / GIB,
        "backward": b.backward / GIB,
        "status": b.status / GIB,
    }
    assert abs(b.forward / GIB - paper["forward"]) < 0.5
    assert abs(b.backward / GIB - paper["backward"]) < 0.5
    assert abs(b.status / GIB - paper["status"]) < 0.2
