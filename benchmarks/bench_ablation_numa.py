"""Ablation — NUMA node count (the paper's machine has 4).

Rebuilds the partitioned graphs for 1, 2, 4 and 8 simulated NUMA nodes
(total core count held at 48) and re-runs the hybrid engine.  Expected:
results identical in visited sets regardless of partitioning (correctness
is partition-invariant) and edge conservation holds; the forward graph's
index duplication grows linearly with the node count (the capacity cost
the size model charges as 16·n·ℓ).
"""

import numpy as np

from repro.analysis.report import ascii_table, format_teps
from repro.bfs import AlphaBetaPolicy, HybridBFS
from repro.csr import BackwardGraph, ForwardGraph
from repro.graph500 import Graph500Driver
from repro.numa import NumaTopology
from repro.perfmodel.cost import DramCostModel
from repro.util.units import format_bytes

from conftest import BENCH_SEED, N_ROOTS

NODE_COUNTS = (1, 2, 4, 8)


def test_ablation_numa_nodes(benchmark, figure_report, workload):
    driver = Graph500Driver(
        workload.edges, n_roots=N_ROOTS, seed=BENCH_SEED, validate=False
    )
    alpha = 244.0 * workload.n / (1 << 15)

    def run_all():
        out = {}
        for nodes in NODE_COUNTS:
            topo = NumaTopology(n_nodes=nodes, cores_per_node=48 // nodes)
            fwd = ForwardGraph(workload.csr, topo)
            bwd = BackwardGraph(workload.csr, topo)
            engine = HybridBFS(
                fwd, bwd, AlphaBetaPolicy(alpha, alpha),
                DramCostModel().with_topology(nodes, 48 // nodes),
            )
            output = driver.run(engine)
            out[nodes] = (
                output.stats_modeled.median_teps,
                fwd.nbytes,
                [r.result.n_visited for r in output.runs],
            )
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [nodes, format_teps(teps), format_bytes(fwd_bytes)]
        for nodes, (teps, fwd_bytes, _) in out.items()
    ]
    figure_report.add(
        "Ablation: NUMA node count (48 cores total)",
        ascii_table(["nodes", "median TEPS", "forward graph size"], rows),
    )
    benchmark.extra_info["teps_by_nodes"] = {
        str(k): v[0] for k, v in out.items()
    }

    # Correctness is partition-invariant: identical visit counts per root.
    visited = [v for _, _, v in out.values()]
    for other in visited[1:]:
        assert other == visited[0]
    # Forward index duplication: size grows with the node count.
    sizes = [out[n][1] for n in NODE_COUNTS]
    assert all(a < b for a, b in zip(sizes, sizes[1:]))
    # The per-node index overhead matches the size model's 8*n per node
    # (two int64 offsets... one indptr entry) within rounding.
    n = workload.n
    assert sizes[1] - sizes[0] >= 8 * n
