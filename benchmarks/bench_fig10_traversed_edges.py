"""Figure 10 — average traversed edges by direction, per (alpha, beta).

Paper: across the parameter settings, the bottom-up direction performs the
overwhelming majority of edge scans, and pushing alpha up squeezes the
(NVM-bound) top-down share further — the quantitative basis for offloading
only the forward graph.
"""

import numpy as np

from repro.analysis.report import ascii_table
from repro.analysis.sweep import scaled_alpha_grid
from repro.analysis.traversal import traversal_split
from repro.bfs import AlphaBetaPolicy, HybridBFS
from repro.graph500 import sample_roots
from repro.perfmodel.cost import DramCostModel

from conftest import BENCH_SEED, N_ROOTS


def test_fig10_traversed_edges(benchmark, figure_report, workload):
    alphas = scaled_alpha_grid(workload.n)
    roots = sample_roots(
        workload.csr.degrees(), n_roots=N_ROOTS, seed=BENCH_SEED
    )

    def measure():
        splits = []
        for alpha in alphas:
            for factor in (0.1, 1.0, 10.0):
                engine = HybridBFS(
                    workload.forward,
                    workload.backward,
                    AlphaBetaPolicy(alpha, factor * alpha),
                    DramCostModel(),
                )
                results = [engine.run(int(r)) for r in roots]
                splits.append(
                    traversal_split(
                        results, label=f"a={alpha:.3g},b={factor}a"
                    )
                )
        return splits

    splits = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [
            s.label,
            f"{s.top_down:,.0f}",
            f"{s.bottom_up:,.0f}",
            f"{s.total:,.0f}",
            f"{s.top_down_fraction:.2%}",
        ]
        for s in splits
    ]
    figure_report.add(
        f"Figure 10: avg traversed edges by direction @ SCALE {workload.scale}",
        ascii_table(
            ["params", "top-down", "bottom-up", "total", "TD share"], rows
        ),
    )
    benchmark.extra_info["td_share_by_alpha"] = {
        s.label: s.top_down_fraction for s in splits
    }

    # The paper's tuning lever: raising alpha squeezes the (NVM-bound)
    # top-down share monotonically and decisively (at SCALE 27 the
    # largest alpha leaves the forward graph nearly untouched; at bench
    # scale the few unavoidable head levels keep a larger floor).
    share = np.array([s.top_down_fraction for s in splits]).reshape(3, 3)
    per_alpha = share.mean(axis=1)
    assert per_alpha[0] > per_alpha[1] > per_alpha[2]
    assert per_alpha[2] < 0.75 * per_alpha[0]
