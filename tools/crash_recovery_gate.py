#!/usr/bin/env python
"""Crash-recovery gate: the CI entry point for the durability promise.

Per seed: draw a random crash point (level and whether the in-flight
checkpoint is torn), run a clean semi-external traversal, run the same
traversal under a seeded :class:`~repro.semiext.faults.FaultPlan` that
kills the process there, resume from the surviving checkpoints, and
require that the recovered tree

1. passes the Graph500 validator (``repro.graph500.validate_bfs_tree``),
2. byte-equals the uninterrupted run's parent array.

On failure the clean and crashed/resumed parent arrays plus a JSON
summary are written to ``--out`` so CI can upload them and the run can
be replayed locally with the printed parameters.

Usage::

    python tools/crash_recovery_gate.py --seed 7
    python tools/crash_recovery_gate.py --seed 19 --scale 9 --out crash-artifacts

Exit codes: 0 recovered tree valid and byte-identical, 1 mismatch or
validation failure (artifacts written), 2 usage error (crash never
fired — the drawn level exceeded the traversal depth).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

from repro.bfs import AlphaBetaPolicy, SemiExternalBFS  # noqa: E402
from repro.csr import BackwardGraph, ForwardGraph, build_csr  # noqa: E402
from repro.errors import ProcessCrashError  # noqa: E402
from repro.graph500 import EdgeList, generate_edges, validate_bfs_tree  # noqa: E402
from repro.numa import NumaTopology  # noqa: E402
from repro.recovery import RecoverableBFS  # noqa: E402
from repro.semiext import NVMStore, PCIE_FLASH  # noqa: E402
from repro.semiext.faults import FaultPlan  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The gate's command line."""
    parser = argparse.ArgumentParser(
        prog="crash_recovery_gate",
        description="crash, resume, and diff a semi-external BFS for CI",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for the graph, the crash point and the "
                             "fault plan (default: %(default)s)")
    parser.add_argument("--scale", type=int, default=10,
                        help="graph scale, N = 2^scale "
                             "(default: %(default)s)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        help="checkpoint cadence in levels "
                             "(default: %(default)s)")
    parser.add_argument("--out", type=str, default="crash-artifacts",
                        metavar="DIR",
                        help="artifact directory written on failure "
                             "(default: %(default)s)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns the process exit code."""
    args = build_parser().parse_args(argv)

    # The crash point is drawn from the seed, so each CI matrix entry
    # exercises a different (level, torn) pair while staying replayable.
    rng = np.random.default_rng(args.seed)
    crash_level = int(rng.integers(1, 4))
    crash_torn = bool(rng.integers(0, 2))
    print(f"seed {args.seed}: crash at level {crash_level} "
          f"(torn={crash_torn}), scale {args.scale}, "
          f"checkpoint every {args.checkpoint_every}")

    edges = EdgeList(
        generate_edges(args.scale, edge_factor=args.edge_factor,
                       seed=args.seed),
        1 << args.scale,
    )
    csr = build_csr(edges)
    topology = NumaTopology(n_nodes=4, cores_per_node=12)
    forward = ForwardGraph(csr, topology)
    backward = BackwardGraph(csr, topology)
    reachable = np.flatnonzero(csr.degrees() > 0)
    root = int(rng.choice(reachable))

    def engine(workdir: Path, fault_plan: FaultPlan | None = None):
        store = NVMStore(workdir, PCIE_FLASH, fault_plan=fault_plan)
        return SemiExternalBFS.offload(
            forward=forward, backward=backward,
            policy=AlphaBetaPolicy(alpha=50, beta=500), store=store,
        )

    with tempfile.TemporaryDirectory(prefix="crash-gate-") as scratch:
        scratch_dir = Path(scratch)
        clean = engine(scratch_dir / "clean").run(root)

        plan = FaultPlan(seed=args.seed, crash_at_level=crash_level,
                         crash_torn=crash_torn)
        rec = RecoverableBFS(engine(scratch_dir / "crashy", plan),
                             checkpoint_every=args.checkpoint_every)
        try:
            rec.run(root)
        except ProcessCrashError as crash:
            print(f"crashed: {crash}")
        else:
            print(f"error: crash at level {crash_level} never fired "
                  f"(traversal from root {root} too shallow); rerun with "
                  f"a larger --scale", file=sys.stderr)
            return 2
        resumed = rec.resume()

    validation = validate_bfs_tree(edges, resumed.parent, root)
    identical = resumed.parent.tobytes() == clean.parent.tobytes()
    print(f"graph500 validation: {'PASS' if validation.ok else 'FAIL'}")
    print(f"byte-identical to clean run: {identical}")
    if validation.ok and identical:
        print("crash recovery gate OK")
        return 0

    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    np.save(outdir / f"clean_parent_seed{args.seed}.npy", clean.parent)
    np.save(outdir / f"resumed_parent_seed{args.seed}.npy", resumed.parent)
    summary = {
        "seed": args.seed,
        "scale": args.scale,
        "edge_factor": args.edge_factor,
        "root": root,
        "crash_level": crash_level,
        "crash_torn": crash_torn,
        "checkpoint_every": args.checkpoint_every,
        "validation_ok": validation.ok,
        "violations": list(validation.violations),
        "byte_identical": identical,
        "n_mismatched": int((resumed.parent != clean.parent).sum()),
    }
    (outdir / f"crash_summary_seed{args.seed}.json").write_text(
        json.dumps(summary, sort_keys=True, indent=1) + "\n"
    )
    print(f"FAILED: artifacts written to {outdir}/", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
