#!/usr/bin/env python
"""Mutation smoke gate: CI entry point for the dynamic-graph subsystem.

Drives a seeded mutating workload through the batched serving layer
(:mod:`repro.serve` + :mod:`repro.graphmut`), then replays the mutation
stream version by version and checks, at every version:

- **graph500 validity** — the served/repaired tree passes
  :func:`repro.graph500.validate.validate_bfs_tree` against that
  version's edge list;
- **byte-equality vs recompute** — incremental repair from the previous
  version's tree equals :class:`ReferenceBFS` on the post-mutation graph
  exactly (the acceptance bar for the subsystem);
- **backend agreement** — on the final post-mutation graph, the
  partitioned engine and the reference agree byte-for-byte, so dynamic
  graphs stay consistent across local and partitioned backends.

On failure a ``mutation_repro_<seed>.json`` artifact with the seed,
version, root, and offending batch is written to ``--out`` so the case
replays locally.

Usage::

    python tools/mutation_smoke_gate.py --seed 7
    python tools/mutation_smoke_gate.py --seed 19 --scale 9 --out smoke

Exit codes: 0 all checks passed, 1 divergence (artifact written),
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.bfs.reference import ReferenceBFS  # noqa: E402
from repro.core import PAPER_SCENARIOS  # noqa: E402
from repro.csr import build_csr  # noqa: E402
from repro.graph500.validate import validate_bfs_tree  # noqa: E402
from repro.graphmut import DeltaOverlay, repair_tree  # noqa: E402
from repro.graphmut.versioned import _edge_list  # noqa: E402
from repro.serve import (  # noqa: E402
    BFSServer,
    GraphCatalog,
    WorkloadSpec,
    generate_workload,
)


def build_parser() -> argparse.ArgumentParser:
    """The gate's command line."""
    parser = argparse.ArgumentParser(
        prog="mutation_smoke_gate",
        description="serve a seeded mutating workload and verify every "
                    "graph version against full recomputation",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", type=int, default=9,
                        help="graph scale (default: %(default)s)")
    parser.add_argument("--requests", type=int, default=120,
                        help="workload size (default: %(default)s)")
    parser.add_argument("--mut-rate", type=float, default=60.0,
                        help="mutation batches per simulated second "
                             "(default: %(default)s)")
    parser.add_argument("--out", type=str, default="mutation-smoke",
                        metavar="DIR",
                        help="failure artifact directory "
                             "(default: %(default)s)")
    return parser


def _fail(outdir: Path, seed: int, **detail) -> int:
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"mutation_repro_{seed}.json"
    path.write_text(json.dumps({"seed": seed, **detail},
                               sort_keys=True, indent=1, default=str) + "\n")
    print(f"FAIL: {detail.get('check')}: {detail.get('message')}")
    print(f"artifact: {path}")
    return 1


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.scale < 4 or args.requests < 1 or args.mut_rate <= 0:
        print("error: need --scale >= 4, --requests >= 1, --mut-rate > 0",
              file=sys.stderr)
        return 2
    outdir = Path(args.out)
    scenario = {s.name: s for s in PAPER_SCENARIOS}["DRAM+PCIeFlash"]
    n = 1 << args.scale

    catalog = GraphCatalog()
    try:
        graph = catalog.build(
            "default", scenario, scale=args.scale, edge_factor=8,
            seed=args.seed, alpha=n / 128.0, beta=n / 128.0,
        )
        spec = WorkloadSpec(
            n_requests=args.requests, rate_rps=800.0, seed=args.seed,
            mut_rate=args.mut_rate, mut_inserts=3, mut_deletes=3,
        )
        base_csr = build_csr(graph.edges)
        requests = generate_workload(spec, graph.degrees, csr=base_csr)
        server = BFSServer(catalog, batch_size=8)
        report = server.serve(requests)
        final_version = server.mutator_for("default").version
    finally:
        catalog.close()
    from repro.graphmut import MutationBatch
    from repro.serve.workload import MutationEvent

    batches = [MutationBatch.make(r.inserts, r.deletes, base_csr.n_rows)
               for r in requests if isinstance(r, MutationEvent)]
    roots = sorted({r.root for r in requests
                    if not isinstance(r, MutationEvent)})[:6]
    print(f"served {len(report.completions)} queries across "
          f"{final_version + 1} graph versions "
          f"({len(batches)} mutation events, {len(roots)} roots checked)")

    # Replay the stream: at every version, repair from the previous
    # version's tree and demand byte-equality with a fresh recompute.
    overlay = DeltaOverlay(base_csr)
    prev = {r: ReferenceBFS(base_csr).run(r).parent for r in roots}
    checks = 0
    for version, batch in enumerate(batches, start=1):
        effective = overlay.apply(batch)
        cur_csr = overlay.to_csr()
        fresh = {r: ReferenceBFS(cur_csr).run(r).parent for r in roots}
        edges = _edge_list(cur_csr)
        for root in roots:
            outcome = repair_tree(
                overlay.row, cur_csr.n_rows, root, prev[root],
                batch=effective, max_dirty_frac=1.0,
            )
            repaired = (fresh[root] if outcome is None
                        else outcome.parent)
            if not np.array_equal(repaired, fresh[root]):
                bad = np.flatnonzero(repaired != fresh[root])
                return _fail(
                    outdir, args.seed, check="byte-equality",
                    version=version, root=root,
                    batch=batch.to_dict(),
                    message=f"repair diverged from recompute at "
                            f"{bad.size} vertices (first: {bad[:5]})",
                )
            result = validate_bfs_tree(edges, repaired, root)
            if not result.ok:
                return _fail(
                    outdir, args.seed, check="graph500-validate",
                    version=version, root=root, batch=batch.to_dict(),
                    message="; ".join(result.violations),
                )
            checks += 2
        prev = fresh

    # Backend agreement on the final version: partitioned vs reference.
    from repro.conformance import GraphCase, TrialSetup, run_engine

    final_csr = overlay.to_csr()
    case = GraphCase(_edge_list(final_csr))
    import tempfile

    with tempfile.TemporaryDirectory(prefix="mut-smoke-") as workdir:
        for root in roots[:2]:
            ref = run_engine("reference", case, TrialSetup(), root,
                             Path(workdir))
            part = run_engine("partitioned", case, TrialSetup(), root,
                              Path(workdir))
            if not np.array_equal(ref.parent, part.parent):
                return _fail(
                    outdir, args.seed, check="partitioned-agreement",
                    version=len(batches), root=root,
                    message="partitioned engine diverged from reference "
                            "on the post-mutation graph",
                )
            checks += 1

    print(f"mutation smoke: OK ({checks} checks, "
          f"{len(batches)} versions, seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
