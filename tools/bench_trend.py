#!/usr/bin/env python
"""Bench trend: render metric history across BENCH_*.json snapshots.

Takes two or more artifact directories in chronological order (each the
output of ``tools/bench_runner.py`` or ``repro-bfs perf``, e.g. the
committed ``benchmarks/baselines`` followed by one directory per CI
run) and prints, per scenario, every metric's value at each snapshot
plus the relative change from the first snapshot to the last — with the
change flagged when it moves past the *first* snapshot's declared noise
tolerance in the metric's bad direction.  The perf gate answers "did
this run regress"; the trend table answers "where has this metric been
drifting".

Usage::

    python tools/bench_runner.py --all --out bench-out
    python tools/bench_trend.py benchmarks/baselines bench-out
    python tools/bench_trend.py run1/ run2/ run3/ --scenario dist_scaling

Exit codes: 0 rendered, 2 usage/IO error (a scenario missing from a
later snapshot renders as ``-`` rather than failing — trend is a
report, not a gate).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.perf import load  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The trend renderer's command line."""
    parser = argparse.ArgumentParser(
        prog="bench_trend",
        description="Render metric trends across BENCH_*.json artifact "
                    "directories (oldest first).",
    )
    parser.add_argument("dirs", nargs="+", metavar="DIR",
                        help="artifact directories, oldest to newest")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="restrict to one scenario (repeatable; "
                             "default: every scenario in the oldest "
                             "snapshot)")
    return parser


def _snapshot(directory: Path) -> dict:
    """Load every BENCH_*.json under ``directory``, keyed by scenario."""
    artifacts = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        artifact = load(path)
        artifacts[artifact.name] = artifact
    return artifacts


def _format_value(value: float) -> str:
    if value == 0.0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.4g}"


def render_trend(snapshots: list[tuple[str, dict]],
                 scenarios: list[str] | None = None) -> str:
    """The trend table over ``(label, {name: artifact})`` snapshots.

    Scenario and metric sets are anchored on the oldest snapshot; a
    value absent from a later snapshot renders as ``-``.  The ``drift``
    column is the first-to-last relative change, suffixed with ``!``
    when it exceeds the oldest snapshot's tolerance in the metric's bad
    direction.
    """
    if len(snapshots) < 2:
        raise ConfigurationError(
            "trend needs at least two snapshots (oldest first)"
        )
    first_label, first = snapshots[0]
    names = scenarios if scenarios else sorted(first)
    lines: list[str] = []
    for name in names:
        base = first.get(name)
        if base is None:
            raise ConfigurationError(
                f"scenario {name!r} not in oldest snapshot "
                f"{first_label!r}; have {sorted(first)}"
            )
        headers = (["metric"] + [label for label, _ in snapshots]
                   + ["drift"])
        rows: list[list[str]] = []
        for metric_name in sorted(base.metrics):
            base_metric = base.metrics[metric_name]
            cells = [metric_name]
            last_value = None
            for _, artifacts in snapshots:
                artifact = artifacts.get(name)
                metric = (
                    artifact.metrics.get(metric_name)
                    if artifact is not None else None
                )
                if metric is None:
                    cells.append("-")
                else:
                    cells.append(_format_value(metric.value))
                    last_value = metric.value
            if last_value is None or base_metric.value == 0:
                drift = "-" if last_value is None else (
                    "0%" if last_value == 0 else "new"
                )
            else:
                rel = (
                    (last_value - base_metric.value)
                    / abs(base_metric.value)
                )
                worse = -rel if base_metric.higher_is_better else rel
                flag = "!" if worse > base_metric.tolerance else ""
                drift = f"{rel:+.2%}{flag}"
            cells.append(drift)
            rows.append(cells)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines.append(f"== {name} (seed {base.seed}) ==")
        lines.append("  ".join(
            h.ljust(widths[i]) for i, h in enumerate(headers)
        ).rstrip())
        for row in rows:
            lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    snapshots: list[tuple[str, dict]] = []
    try:
        for directory in args.dirs:
            path = Path(directory)
            if not path.is_dir():
                print(f"error: {directory}: not a directory",
                      file=sys.stderr)
                return 2
            snapshots.append((str(directory), _snapshot(path)))
        print(render_trend(snapshots, scenarios=args.scenario), end="")
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
