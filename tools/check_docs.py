#!/usr/bin/env python
"""Documentation checker: dead links, orphan docs, stale flags, code blocks.

Two passes, both offline:

1. **Links** — every markdown link in ``README.md`` and ``docs/*.md``
   whose target is a local path must resolve relative to the file that
   contains it; ``path#anchor`` targets must also name a heading that
   exists in the target file (GitHub anchor rules: lowercase, spaces to
   dashes, punctuation dropped).  ``http(s)``/``mailto`` targets are
   syntax-checked only — CI has no network.  The same pass fails on
   **orphan docs** (a ``docs/*.md`` that no README link reaches — it
   would be invisible to a reader starting at the front door) and on
   **stale CLI flags**: every ``--flag`` on a ``repro-bfs`` line inside
   a fenced block must exist on the real argparse parser, so docs cannot
   drift ahead of (or behind) the CLI.
2. **Code blocks** — every fenced ```` ```python ```` block in the
   executable docs (``docs/tutorial.md``, ``docs/observability.md``,
   ``docs/serving.md``, ``docs/slo.md``, ``docs/conformance.md``,
   ``docs/recovery.md``, ``docs/offload.md``) runs
   top to bottom in one shared namespace per file, from a scratch working
   directory, exactly like a reader pasting the tutorial into a REPL.
   A block raising makes the build fail with the file, block number and
   traceback.

Usage::

    python tools/check_docs.py            # both passes, default file sets
    python tools/check_docs.py --links-only
    python tools/check_docs.py --exec-only docs/tutorial.md
"""

from __future__ import annotations

import argparse
import io
import re
import sys
import tempfile
import traceback
from contextlib import redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Docs whose ```python blocks must execute cleanly.
EXECUTABLE_DOCS = (
    "docs/tutorial.md",
    "docs/observability.md",
    "docs/serving.md",
    "docs/slo.md",
    "docs/conformance.md",
    "docs/recovery.md",
    "docs/offload.md",
    "docs/partitioning.md",
    "docs/dynamic.md",
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _anchor(heading: str) -> str:
    """GitHub's heading → fragment rule (close enough for our docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _rel(path: Path) -> Path:
    """Repo-relative when possible (tests point at tmp files too)."""
    try:
        return path.relative_to(REPO)
    except ValueError:
        return path


def _anchors_of(path: Path) -> set[str]:
    return {
        _anchor(m.group(1))
        for line in path.read_text().splitlines()
        if (m := _HEADING.match(line))
    }


def check_links(files: list[Path]) -> list[str]:
    """Return one error string per dead link (empty = clean)."""
    errors: list[str] = []
    for path in files:
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                where = f"{_rel(path)}:{lineno}"
                if target.startswith(("http://", "https://", "mailto:")):
                    continue  # offline: syntax presence is the check
                base, _, fragment = target.partition("#")
                dest = (path.parent / base).resolve() if base else path
                if not dest.exists():
                    errors.append(f"{where}: dead link -> {target}")
                    continue
                if fragment and dest.suffix == ".md":
                    if fragment not in _anchors_of(dest):
                        errors.append(
                            f"{where}: missing anchor #{fragment} in {base or path.name}"
                        )
    return errors


def check_orphan_docs(readme: Path, docs: list[Path]) -> list[str]:
    """Every doc under ``docs/`` must be a link target in the README.

    A page nobody links to from the front door is a page nobody finds;
    new docs must register themselves in the README docs table.
    """
    linked: set[Path] = set()
    for target in _LINK.findall(readme.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base = target.partition("#")[0]
        if base:
            dest = (readme.parent / base).resolve()
            if dest.exists():
                linked.add(dest)
    return [
        f"{_rel(doc)}: orphan doc — not linked from {_rel(readme)}"
        for doc in docs
        if doc.resolve() not in linked
    ]


def _cli_flags() -> set[str]:
    """All option strings the real ``repro-bfs`` parser accepts."""
    from repro.cli import build_parser

    flags: set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            flags.update(action.option_strings)
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(build_parser())
    return flags


_FLAG = re.compile(r"(?<![\w-])(--[a-z][\w-]*)")


def check_cli_flags(files: list[Path]) -> list[str]:
    """Flag every ``--option`` in a fenced ``repro-bfs`` line that the
    real parser does not accept (stale or misspelled docs)."""
    known = _cli_flags()
    errors: list[str] = []
    for path in files:
        in_fence = False
        continued = False
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if line.strip().startswith("```"):
                in_fence = not in_fence
                continued = False
                continue
            if not in_fence:
                continue
            is_cli = "repro-bfs" in line or continued
            continued = is_cli and line.rstrip().endswith("\\")
            if not is_cli:
                continue
            for flag in _FLAG.findall(line):
                if flag not in known:
                    errors.append(
                        f"{_rel(path)}:{lineno}: unknown repro-bfs flag "
                        f"{flag} (stale docs or typo)"
                    )
    return errors


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(first_line_number, source)`` of each ```python fence."""
    blocks: list[tuple[int, str]] = []
    lang, start, buf = None, 0, []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        fence = _FENCE.match(line)
        if fence and lang is None:
            lang, start, buf = fence.group(1), lineno + 1, []
        elif line.strip() == "```" and lang is not None:
            if lang == "python":
                blocks.append((start, "\n".join(buf)))
            lang = None
        elif lang is not None:
            buf.append(line)
    return blocks


def exec_blocks(path: Path) -> tuple[list[str], list[str]]:
    """Execute a doc's python blocks in one shared namespace.

    Returns ``(outputs, errors)``: the captured stdout of each block (in
    order) and one formatted error per block that raised.  The tests
    reuse this to assert the tutorial's printed output *shape*, not just
    that it runs.
    """
    outputs: list[str] = []
    errors: list[str] = []
    namespace: dict[str, object] = {"__name__": "__docs__"}
    rel = _rel(path)
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        import os

        cwd = os.getcwd()
        os.chdir(scratch)
        try:
            for i, (lineno, source) in enumerate(python_blocks(path), 1):
                sink = io.StringIO()
                try:
                    code = compile(source, f"{rel}:block{i}", "exec")
                    with redirect_stdout(sink):
                        exec(code, namespace)  # noqa: S102 — the tool's purpose
                except Exception:
                    errors.append(
                        f"{rel}:{lineno}: block {i} raised\n"
                        + traceback.format_exc(limit=4)
                    )
                outputs.append(sink.getvalue())
        finally:
            os.chdir(cwd)
    return outputs, errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="docs to run blocks from (default: the "
                             "executable docs)")
    parser.add_argument("--links-only", action="store_true")
    parser.add_argument("--exec-only", action="store_true")
    args = parser.parse_args(argv)

    errors: list[str] = []
    if not args.exec_only:
        readme = REPO / "README.md"
        docs = sorted((REPO / "docs").glob("*.md"))
        link_files = [readme] + docs
        errors += check_links(link_files)
        errors += check_orphan_docs(readme, docs)
        errors += check_cli_flags(link_files)
        print(f"links: {len(link_files)} files checked")
    if not args.links_only:
        doc_files = [f.resolve() for f in args.files] or [
            REPO / rel for rel in EXECUTABLE_DOCS
        ]
        for path in doc_files:
            n = len(python_blocks(path))
            _, block_errors = exec_blocks(path)
            errors += block_errors
            print(f"exec: {path.relative_to(REPO)} ({n} python blocks)")
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"FAILED: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
