#!/usr/bin/env python
"""Dist-smoke gate: the CI entry point for the partitioned-BFS promise.

Per seed: run a 4-partition traversal through the coordinator with
forked worker processes attached to shared-memory CSR segments (the
``process`` backend — the deployment shape, not the in-process test
double), run the same traversal through the single-process
:class:`~repro.bfs.semi_external.SemiExternalBFS`, and require that the
partitioned tree

1. passes the Graph500 validator (``repro.graph500.validate_bfs_tree``),
2. byte-equals the single-process run's parent array.

On failure both parent arrays plus a JSON summary are written to
``--out`` so CI can upload them and the run can be replayed locally with
the printed parameters.

Usage::

    python tools/dist_smoke_gate.py --seed 7
    python tools/dist_smoke_gate.py --seed 19 --scale 9 --out dist-artifacts

Exit codes: 0 partitioned tree valid and byte-identical, 1 mismatch or
validation failure (artifacts written), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

from repro.bfs import AlphaBetaPolicy, SemiExternalBFS  # noqa: E402
from repro.csr import BackwardGraph, ForwardGraph, build_csr  # noqa: E402
from repro.dist import ContiguousPartitioner, DistributedBFS  # noqa: E402
from repro.graph500 import EdgeList, generate_edges, validate_bfs_tree  # noqa: E402
from repro.numa import NumaTopology  # noqa: E402
from repro.semiext import NVMStore, PCIE_FLASH  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The gate's command line."""
    parser = argparse.ArgumentParser(
        prog="dist_smoke_gate",
        description="partitioned vs single-process BFS diff for CI",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for the graph and the root draw "
                             "(default: %(default)s)")
    parser.add_argument("--scale", type=int, default=10,
                        help="graph scale, N = 2^scale "
                             "(default: %(default)s)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--partitions", type=int, default=4,
                        help="worker count for the partitioned run "
                             "(default: %(default)s)")
    parser.add_argument("--roots", type=int, default=2,
                        help="number of roots to traverse and diff "
                             "(default: %(default)s)")
    parser.add_argument("--out", type=str, default="dist-artifacts",
                        metavar="DIR",
                        help="artifact directory written on failure "
                             "(default: %(default)s)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.partitions < 1 or args.roots < 1:
        print("error: --partitions and --roots must be >= 1",
              file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    edges = EdgeList(
        generate_edges(args.scale, edge_factor=args.edge_factor,
                       seed=args.seed),
        1 << args.scale,
    )
    csr = build_csr(edges)
    topology = NumaTopology(n_nodes=4, cores_per_node=12)
    reachable = np.flatnonzero(csr.degrees() > 0)
    roots = [int(r) for r in rng.choice(reachable, size=args.roots,
                                        replace=False)]
    print(f"seed {args.seed}: scale {args.scale}, "
          f"{args.partitions} partitions (process backend), roots {roots}")

    failures = []
    with tempfile.TemporaryDirectory(prefix="dist-gate-") as scratch:
        scratch_dir = Path(scratch)
        dist = DistributedBFS.build(
            csr,
            ContiguousPartitioner(args.partitions),
            AlphaBetaPolicy(alpha=50, beta=500),
            scratch_dir / "dist",
            PCIE_FLASH,
            backend="process",
            concurrency=topology.n_cores,
        )
        single = SemiExternalBFS.offload(
            forward=ForwardGraph(csr, topology),
            backward=BackwardGraph(csr, topology),
            policy=AlphaBetaPolicy(alpha=50, beta=500),
            store=NVMStore(scratch_dir / "single", PCIE_FLASH,
                           concurrency=topology.n_cores),
        )
        try:
            for root in roots:
                part = dist.run(root)
                ref = single.run(root)
                validation = validate_bfs_tree(edges, part.parent, root)
                identical = part.parent.tobytes() == ref.parent.tobytes()
                print(f"root {root}: graph500 "
                      f"{'PASS' if validation.ok else 'FAIL'}, "
                      f"byte-identical {identical}")
                if not (validation.ok and identical):
                    failures.append(
                        (root, validation, part.parent, ref.parent)
                    )
        finally:
            dist.close()

    if not failures:
        print("dist smoke gate OK")
        return 0

    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    for root, validation, part_parent, ref_parent in failures:
        tag = f"seed{args.seed}_root{root}"
        np.save(outdir / f"partitioned_parent_{tag}.npy", part_parent)
        np.save(outdir / f"single_parent_{tag}.npy", ref_parent)
        summary = {
            "seed": args.seed,
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "partitions": args.partitions,
            "root": root,
            "validation_ok": validation.ok,
            "violations": list(validation.violations),
            "byte_identical": bool(
                part_parent.tobytes() == ref_parent.tobytes()
            ),
            "n_mismatched": int((part_parent != ref_parent).sum()),
        }
        (outdir / f"dist_summary_{tag}.json").write_text(
            json.dumps(summary, sort_keys=True, indent=1) + "\n"
        )
    print(f"FAILED: artifacts written to {outdir}/", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
