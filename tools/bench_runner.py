#!/usr/bin/env python
"""Headless benchmark runner: execute scenarios, write BENCH_*.json.

Runs named scenarios from :mod:`repro.perf.scenarios` with a fixed seed
and writes one schema-versioned ``BENCH_<name>.json`` artifact each.
Everything is measured on the simulated clock, so a same-seed re-run
writes byte-identical artifacts — the property ``tools/perf_gate.py``
relies on to tell regressions from noise.

Usage::

    python tools/bench_runner.py --list
    python tools/bench_runner.py --all --out bench-out
    python tools/bench_runner.py --scenario serve_batching --out bench-out
    python tools/bench_runner.py --all --out benchmarks/baselines  # refresh

The default seed (7) matches the committed baselines in
``benchmarks/baselines/``; change both together.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.perf import SCENARIOS, get_scenario  # noqa: E402

DEFAULT_SEED = 7


def build_parser() -> argparse.ArgumentParser:
    """The runner's command line."""
    parser = argparse.ArgumentParser(
        prog="bench_runner",
        description="Run registered benchmark scenarios headlessly and "
                    "write BENCH_<name>.json artifacts.",
    )
    pick = parser.add_mutually_exclusive_group(required=True)
    pick.add_argument("--list", action="store_true",
                      help="list registered scenarios and exit")
    pick.add_argument("--all", action="store_true",
                      help="run every registered scenario")
    pick.add_argument("--scenario", action="append", default=None,
                      metavar="NAME",
                      help="run one scenario (repeatable)")
    parser.add_argument("--out", default="bench-out", metavar="DIR",
                        help="directory for the artifacts "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="scenario seed (default: %(default)s, the "
                             "committed baselines' seed)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for s in SCENARIOS:
            print(f"{s.name:24s} {s.description}  [{s.paper_ref}]")
        return 0
    try:
        scenarios = (
            list(SCENARIOS) if args.all
            else [get_scenario(n) for n in args.scenario]
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    outdir = Path(args.out)
    for scenario in scenarios:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as td:
            artifact = scenario.run(args.seed, Path(td))
        path = artifact.write(outdir)
        print(f"{scenario.name}: wrote {path} "
              f"({len(artifact.metrics)} metrics, "
              f"{artifact.simulated_seconds:.4f} simulated s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
