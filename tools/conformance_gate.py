#!/usr/bin/env python
"""Conformance gate: the CI entry point for the cross-engine harness.

Runs the differential + metamorphic conformance harness
(:mod:`repro.conformance`) over the given seeds, prints the report, and
writes a machine-readable ``conformance_report.json`` next to any
``repro_*.json`` counterexample artifacts — so a red CI run uploads
everything needed to replay the failure locally::

    repro-bfs conformance --replay conformance/repro_<...>.json

Usage::

    python tools/conformance_gate.py                     # full defaults
    python tools/conformance_gate.py --quick --seeds 7   # one cheap seed
    python tools/conformance_gate.py --scale 10 --out conformance

Exit codes: 0 all engines conform, 1 at least one failure (artifacts
written), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

from repro.conformance import ConformanceConfig, run_conformance  # noqa: E402
from repro.errors import ConfigurationError  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The gate's command line."""
    parser = argparse.ArgumentParser(
        prog="conformance_gate",
        description="run the cross-engine conformance harness for CI",
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=[7, 19, 101],
                        metavar="SEED")
    parser.add_argument("--trials", type=int, default=3,
                        help="trials per seed (default: %(default)s)")
    parser.add_argument("--scale", type=int, default=8,
                        help="largest graph scale drawn "
                             "(default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="2 trials per seed, scale capped at 6")
    parser.add_argument("--out", type=str, default="conformance",
                        metavar="DIR",
                        help="artifact directory (default: %(default)s)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        config = ConformanceConfig(
            seeds=tuple(args.seeds),
            trials=2 if args.quick else args.trials,
            max_scale=min(args.scale, 6) if args.quick else args.scale,
            artifact_dir=args.out,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_conformance(config)
    print(report.render())
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    summary = {
        "engines": list(report.engines),
        "seeds": list(report.seeds),
        "trials": report.trials,
        "checks": report.checks,
        "ok": report.ok,
        "failures": [
            {
                "seed": f.seed,
                "trial": f.trial,
                "engine": f.engine,
                "check": f.check,
                "message": f.message,
                "artifact": f.artifact,
            }
            for f in report.failures
        ],
    }
    (outdir / "conformance_report.json").write_text(
        json.dumps(summary, sort_keys=True, indent=1) + "\n"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
