#!/usr/bin/env python
"""Perf gate: diff BENCH_*.json artifacts against committed baselines.

For every baseline artifact, loads the candidate of the same name from
the run directory and compares metric by metric with the *baseline's*
declared noise tolerances (a candidate cannot loosen its own gate).
A metric worse than tolerance in its bad direction — lower TEPS, more
bytes per query, higher degradation — or missing from the candidate
fails the gate; the process exits non-zero so CI blocks the merge.

Usage::

    python tools/bench_runner.py --all --out bench-out
    python tools/perf_gate.py --baseline benchmarks/baselines \\
                              --candidate bench-out

Exit codes: 0 all gates pass, 1 regression (or missing artifact),
2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(REPO / "src"))

from repro.errors import ConfigurationError  # noqa: E402
from repro.perf import compare, load  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The gate's command line."""
    parser = argparse.ArgumentParser(
        prog="perf_gate",
        description="Fail when a benchmark run regresses beyond the "
                    "baseline's per-metric noise tolerances.",
    )
    parser.add_argument("--baseline", default="benchmarks/baselines",
                        metavar="DIR",
                        help="committed baseline artifacts "
                             "(default: %(default)s)")
    parser.add_argument("--candidate", required=True, metavar="DIR",
                        help="artifacts of the run under test")
    return parser


def _gate_one(baseline_path: Path, candidate_dir: Path) -> int:
    """Gate one scenario; returns the number of failing metrics."""
    baseline = load(baseline_path)
    candidate_path = candidate_dir / baseline_path.name
    if not candidate_path.exists():
        print(f"{baseline.name}: FAIL — candidate artifact "
              f"{candidate_path} missing")
        return 1
    deltas = compare(baseline, load(candidate_path))
    failures = 0
    print(f"{baseline.name}:")
    for d in deltas:
        direction = "higher" if d.higher_is_better else "lower"
        if d.status == "missing":
            line = (f"  {d.name:28s} MISSING from candidate "
                    f"(baseline {d.baseline:g} {d.unit})")
        else:
            line = (f"  {d.name:28s} {d.baseline:>14g} -> "
                    f"{d.candidate:>14g} {d.unit:4s} "
                    f"{d.rel_change:+8.2%} "
                    f"(tol {d.tolerance:.0%}, {direction} is better): "
                    f"{d.status.upper()}")
        print(line)
        if d.is_regression:
            failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    baseline_dir = Path(args.baseline)
    candidate_dir = Path(args.candidate)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}",
              file=sys.stderr)
        return 2
    total_failures = 0
    try:
        for path in baselines:
            total_failures += _gate_one(path, candidate_dir)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if total_failures:
        print(f"\nperf gate: FAIL ({total_failures} regressing "
              f"metric(s) across {len(baselines)} scenario(s))")
        return 1
    print(f"\nperf gate: PASS ({len(baselines)} scenario(s) within "
          f"tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
